"""Knowledge-graph schema: constraints, merging, serialization."""

import networkx as nx
import pytest

from repro.data.tasks import get_task
from repro.kg import Constraint, ConstraintKind, KnowledgeGraph


def req(family, values, weight=1.0):
    return Constraint(ConstraintKind.REQUIRES, family, frozenset(values), weight)


class TestConstraint:
    def test_validation_family(self):
        with pytest.raises(KeyError):
            Constraint(ConstraintKind.REQUIRES, "flavor", frozenset({"sweet"}))

    def test_validation_values(self):
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.REQUIRES, "color", frozenset({"puce"}))

    def test_validation_empty(self):
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.REQUIRES, "color", frozenset())

    def test_validation_weight(self):
        with pytest.raises(ValueError):
            req("color", {"red"}, weight=0.0)
        with pytest.raises(ValueError):
            req("color", {"red"}, weight=1.5)


class TestKnowledgeGraph:
    def test_add_and_query(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(req("color", {"red"}))
        assert len(kg) == 1
        assert kg.get(ConstraintKind.REQUIRES, "color").values == {"red"}
        assert kg.get(ConstraintKind.EXCLUDES, "color") is None

    def test_merge_same_kind_family(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(req("color", {"red"}, 0.5))
        kg.add_constraint(req("color", {"blue"}, 0.9))
        merged = kg.get(ConstraintKind.REQUIRES, "color")
        assert merged.values == {"red", "blue"}
        assert merged.weight == 0.9
        assert len(kg) == 1

    def test_requires_and_excludes_coexist(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(req("color", {"red"}))
        kg.add_constraint(
            Constraint(ConstraintKind.EXCLUDES, "color", frozenset({"blue"}))
        )
        assert len(kg) == 2

    def test_remove(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(req("size", {"large"}))
        assert kg.remove_constraint(ConstraintKind.REQUIRES, "size")
        assert not kg.remove_constraint(ConstraintKind.REQUIRES, "size")
        assert len(kg) == 0

    def test_replace(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(req("size", {"large"}))
        kg.replace_constraint(req("size", {"small"}))
        assert kg.get(ConstraintKind.REQUIRES, "size").values == {"small"}

    def test_constrained_families_sorted(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(req("size", {"large"}))
        kg.add_constraint(req("color", {"red"}))
        assert kg.constrained_families() == ["color", "size"]

    def test_networkx_view_structure(self):
        kg = KnowledgeGraph("mytask")
        kg.add_constraint(req("color", {"red", "blue"}))
        g = kg.graph
        assert isinstance(g, nx.DiGraph)
        assert g.nodes["task:mytask"]["kind"] == "task"
        assert g.has_edge("task:mytask", "family:color")
        assert g.has_edge("family:color", "value:color=red")
        assert g.has_edge("family:color", "value:color=blue")

    def test_dict_roundtrip(self):
        kg = KnowledgeGraph("t", "mission text")
        kg.add_constraint(req("color", {"red"}, 0.7))
        kg.add_constraint(
            Constraint(ConstraintKind.EXCLUDES, "size", frozenset({"small"}), 0.4)
        )
        restored = KnowledgeGraph.from_dict(kg.to_dict())
        assert restored.task_name == "t"
        assert restored.mission_text == "mission text"
        assert restored.to_dict() == kg.to_dict()

    def test_from_predicate_oracle(self):
        task = get_task("sterile_supplies")
        kg = KnowledgeGraph.from_predicate(task.name, task.predicate)
        assert set(kg.constrained_families()) == set(
            task.predicate.constrained_families
        )

    def test_repr_mentions_constraints(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(req("color", {"red"}))
        assert "requires" in repr(kg)
