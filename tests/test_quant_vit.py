"""Whole-model quantization: calibration sites, accuracy retention."""

import numpy as np
import pytest

from repro.quant import QuantSpec, calibrate_observers, quantize_vit
from repro.quant.vit import _float_proj, _site_linear, _vit_forward, gemm_sites
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def calibration_images():
    rng = np.random.default_rng(0)
    return rng.random((32, 3, 32, 32)).astype(np.float32)


class TestSites:
    def test_site_enumeration(self, student_vit):
        sites = gemm_sites(student_vit.config.depth, student_vit.attribute_names)
        assert "patch_proj" in sites and "head" in sites
        assert f"block{student_vit.config.depth - 1}.fc2" in sites
        assert len(sites) == 1 + 4 * student_vit.config.depth + 1 + len(
            student_vit.attribute_names)

    def test_site_resolution(self, student_vit):
        for site in gemm_sites(student_vit.config.depth,
                               student_vit.attribute_names):
            layer = _site_linear(student_vit, site)
            assert hasattr(layer, "weight")

    def test_unknown_site(self, student_vit):
        with pytest.raises(KeyError):
            _site_linear(student_vit, "block0.mystery")


class TestFloatPathConsistency:
    def test_mirrored_forward_matches_module(self, student_vit, calibration_images):
        """The shared numpy forward must match the autograd module (up to
        the tanh-GELU approximation)."""
        sites = gemm_sites(student_vit.config.depth, student_vit.attribute_names)
        projections = {s: _float_proj(_site_linear(student_vit, s)) for s in sites}
        mirrored = _vit_forward(student_vit, calibration_images[:4], projections)
        with no_grad():
            reference = student_vit(Tensor(calibration_images[:4]))
        np.testing.assert_allclose(
            mirrored["class_logits"], reference["class_logits"].data, atol=5e-3
        )
        for family in student_vit.attribute_names:
            np.testing.assert_allclose(
                mirrored["attributes"][family],
                reference["attributes"][family].data, atol=5e-3,
            )


class TestCalibration:
    def test_every_site_calibrated(self, student_vit, calibration_images):
        params = calibrate_observers(student_vit, calibration_images)
        sites = gemm_sites(student_vit.config.depth, student_vit.attribute_names)
        assert set(params) == set(sites)
        for p in params.values():
            assert float(np.asarray(p.scale).min()) > 0


class TestQuantizedModel:
    def test_outputs_close_to_float(self, student_vit, calibration_images):
        q = quantize_vit(student_vit, calibration_images)
        out_q = q(calibration_images[:8])
        with no_grad():
            out_f = student_vit(Tensor(calibration_images[:8]))
        ref = out_f["class_logits"].data
        err = np.abs(out_q["class_logits"] - ref).max()
        assert err < 0.15 * max(np.abs(ref).max(), 1.0)

    def test_prediction_agreement(self, student_vit, calibration_images):
        q = quantize_vit(student_vit, calibration_images)
        agreement = (q.classify(calibration_images)
                     == np.array([student_vit.classify(Tensor(calibration_images))]).ravel())
        assert agreement.mean() >= 0.9

    def test_size_shrinks_with_bits(self, student_vit, calibration_images):
        sizes = {}
        for bits in (4, 8, 16):
            q = quantize_vit(
                student_vit, calibration_images,
                weight_spec=QuantSpec(bits=bits, symmetric=True,
                                      per_channel=True, axis=0),
            )
            sizes[bits] = q.model_size_bytes()
        assert sizes[4] < sizes[8] < sizes[16]

    def test_model_size_counts_packed_bits(self, student_vit,
                                           calibration_images):
        """Sub-byte widths must report the packed footprint —
        ceil(size·bits/8) per layer — not one storage byte per code."""
        for bits in (2, 4, 8):
            q = quantize_vit(
                student_vit, calibration_images,
                weight_spec=QuantSpec(bits=bits, symmetric=True,
                                      per_channel=True, axis=0),
            )
            expected = 0
            for layer in q.layers.values():
                expected += (layer.weight_q.size * bits + 7) // 8
                if layer.bias is not None:
                    expected += layer.bias.size * 4
            float_aux = q.model_size_bytes() - expected
            assert float_aux > 0  # LayerNorm/cls/pos params ride along
            weight_codes = sum(l.weight_q.size for l in q.layers.values())
            # The packed weight payload alone must be ~bits/8 per code.
            packed = q.model_size_bytes() - float_aux
            biases = sum(l.bias.size * 4 for l in q.layers.values()
                         if l.bias is not None)
            assert packed - biases <= weight_codes * bits / 8 + len(q.layers)

    def test_fast_path_bitwise_equals_reference(self, student_vit,
                                                calibration_images,
                                                monkeypatch):
        q = quantize_vit(student_vit, calibration_images)
        fast = q(calibration_images[:4])
        monkeypatch.setenv("REPRO_QUANT_EXACT", "1")
        reference = q(calibration_images[:4])
        for key in fast:
            if isinstance(fast[key], dict):
                for sub in fast[key]:
                    np.testing.assert_array_equal(fast[key][sub],
                                                  reference[key][sub])
            else:
                np.testing.assert_array_equal(fast[key], reference[key])

    def test_batch_invariant_forward(self, student_vit, calibration_images):
        """Fused batches must reproduce per-image forwards bit for bit —
        every reduction in the quantized graph is row-local."""
        q = quantize_vit(student_vit, calibration_images)
        images = calibration_images[:6]
        batched = q(images)
        for i in range(images.shape[0]):
            single = q(images[i : i + 1])
            for key in batched:
                if isinstance(batched[key], dict):
                    for sub in batched[key]:
                        np.testing.assert_array_equal(batched[key][sub][i],
                                                      single[key][sub][0])
                else:
                    np.testing.assert_array_equal(batched[key][i],
                                                  single[key][0])

    def test_weight_bits_reported(self, student_vit, calibration_images):
        q = quantize_vit(
            student_vit, calibration_images,
            weight_spec=QuantSpec(bits=4, symmetric=True, per_channel=True),
        )
        assert q.weight_bits() == 4

    def test_forward_shapes(self, student_vit, calibration_images):
        q = quantize_vit(student_vit, calibration_images)
        out = q(calibration_images[:3])
        assert out["class_logits"].shape == (3, student_vit.config.num_classes)
        assert out["cls_embedding"].shape == (3, student_vit.config.dim)
