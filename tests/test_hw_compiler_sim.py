"""Compiler lowering and simulator execution on real quantized models."""

import numpy as np
import pytest

from repro.hw import (
    AcceleratorConfig,
    Compiler,
    GemmOp,
    GPUConfig,
    GPUModel,
    PlatformPower,
    Program,
    Simulator,
    SystolicArray,
    compile_model,
    energy_per_frame_j,
    streaming_comparison,
)
from repro.hw.isa import DmaOp, VectorOp
from repro.quant import quantize_vit


@pytest.fixture(scope="module")
def quantized_model(student_vit):
    rng = np.random.default_rng(0)
    calibration = rng.random((24, 3, 32, 32)).astype(np.float32)
    return quantize_vit(student_vit, calibration)


@pytest.fixture(scope="module")
def program(quantized_model):
    return compile_model(quantized_model)


class TestCompiler:
    def test_gemm_count(self, program, quantized_model):
        cfg = quantized_model.config
        gemms = [op for op in program if isinstance(op, GemmOp)]
        # per block: qkv + proj + fc1 + fc2 + 2*heads attention products
        expected = 1 + cfg.depth * (4 + 2 * cfg.num_heads) + 1 + len(
            quantized_model.attribute_names)
        assert len(gemms) == expected

    def test_weight_gemms_reference_sites(self, program, quantized_model):
        sites = {op.site for op in program
                 if isinstance(op, GemmOp) and op.site is not None}
        assert sites == set(quantized_model.layers)

    def test_mac_count_matches_model_flops(self, program, quantized_model):
        """Compiled MAC count equals the analytic ViT MAC count."""
        analytic = quantized_model.model.flops_per_image()
        assert program.total_macs() == analytic

    def test_batch_scales_macs(self, quantized_model):
        b1 = compile_model(quantized_model, batch=1).total_macs()
        b4 = compile_model(quantized_model, batch=4).total_macs()
        assert b4 == 4 * b1

    def test_weights_pinned_when_fitting(self, program):
        """Student weights fit in SRAM: no weight-load DMA emitted."""
        dma_names = [op.name for op in program if isinstance(op, DmaOp)]
        assert "load_weights" not in dma_names
        assert "load_image" in dma_names and "store_logits" in dma_names

    def test_weights_streamed_when_too_large(self, quantized_model):
        tiny_sram = AcceleratorConfig(weight_sram_kib=1)
        program = Compiler(tiny_sram).compile(quantized_model)
        assert any(op.name == "load_weights" for op in program
                   if isinstance(op, DmaOp))

    def test_invalid_batch(self, quantized_model):
        with pytest.raises(ValueError):
            compile_model(quantized_model, batch=0)


class TestSimulator:
    def test_report_fields(self, program):
        report = Simulator(AcceleratorConfig.edge_default()).simulate(program)
        assert report.total_cycles > 0
        assert report.latency_s > 0
        assert report.energy_j > 0
        assert 0 < report.array_utilization <= 1.0
        assert set(report.engine_cycles) == {"gemm", "vector", "dma"}
        assert "static" in report.energy_breakdown_j
        assert "latency" in report.summary()

    def test_latency_at_least_longest_engine(self, program):
        sim = Simulator(AcceleratorConfig.edge_default())
        report = sim.simulate(program)
        assert report.total_cycles >= max(report.engine_cycles.values())

    def test_overlap_reduces_latency(self, program):
        no_overlap = Simulator(AcceleratorConfig.edge_default(),
                               overlap_efficiency=0.0).simulate(program)
        overlap = Simulator(AcceleratorConfig.edge_default(),
                            overlap_efficiency=1.0).simulate(program)
        assert overlap.total_cycles < no_overlap.total_cycles

    def test_bigger_array_faster(self, quantized_model):
        small = Simulator(AcceleratorConfig.small()).simulate(
            Compiler(AcceleratorConfig.small()).compile(quantized_model))
        large = Simulator(AcceleratorConfig.large()).simulate(
            Compiler(AcceleratorConfig.large()).compile(quantized_model))
        assert large.latency_s < small.latency_s

    def test_energy_breakdown_sums(self, program):
        report = Simulator(AcceleratorConfig.edge_default()).simulate(program)
        assert sum(report.energy_breakdown_j.values()) == pytest.approx(
            report.energy_j)

    def test_throughput_consistency(self, program):
        report = Simulator(AcceleratorConfig.edge_default()).simulate(program)
        assert report.throughput_inferences_per_s == pytest.approx(
            report.batch / report.latency_s)


class TestGPUModel:
    def test_report(self, program):
        report = GPUModel(GPUConfig.jetson_class()).simulate(program)
        assert report.latency_s > 0
        assert report.kernel_count > 0
        assert report.energy_j == pytest.approx(
            GPUConfig.jetson_class().busy_w * report.latency_s)

    def test_launch_overhead_dominates_small_model(self, program):
        report = GPUModel(GPUConfig.jetson_class()).simulate(program)
        assert report.time_breakdown_s["launch"] > report.time_breakdown_s["memory"]

    def test_fast_host_faster(self, program):
        slow = GPUModel(GPUConfig.jetson_class()).simulate(program)
        fast = GPUModel(GPUConfig.fast_host()).simulate(program)
        assert fast.latency_s < slow.latency_s

    def test_accelerator_beats_gpu(self, program):
        """The paper's headline direction: accelerator wins at batch 1."""
        accel = Simulator(AcceleratorConfig.edge_default()).simulate(program)
        gpu = GPUModel(GPUConfig.jetson_class()).simulate(program)
        assert gpu.latency_s / accel.latency_s > 1.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(peak_fp16_tflops=0)
        with pytest.raises(ValueError):
            GPUConfig(fusion_factor=1.5)


class TestPlatform:
    def test_energy_per_frame_floor(self):
        platform = PlatformPower("p", idle_w=1.0, active_extra_w=0.0)
        assert energy_per_frame_j(platform, 1e-3, fps=10) == pytest.approx(0.1)

    def test_active_adder(self):
        idle_only = PlatformPower("a", idle_w=1.0, active_extra_w=0.0)
        with_active = PlatformPower("b", idle_w=1.0, active_extra_w=5.0)
        assert (energy_per_frame_j(with_active, 1e-3, 30)
                > energy_per_frame_j(idle_only, 1e-3, 30))

    def test_cannot_sustain_fps(self):
        with pytest.raises(ValueError):
            energy_per_frame_j(PlatformPower.gpu_board(), 0.2, fps=30)

    def test_streaming_comparison_keys(self):
        result = streaming_comparison(accel_latency_s=3e-5, gpu_latency_s=1e-4)
        assert result["speedup"] == pytest.approx(1e-4 / 3e-5)
        assert 0 < result["energy_reduction_pct"] < 100
