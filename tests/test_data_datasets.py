"""Window datasets: labels, masking, few-shot splits, batching."""

import numpy as np
import pytest

from repro.data import (
    batch_iterator,
    build_task_windows,
    build_window_dataset,
    few_shot_split,
    get_task,
)
from repro.data.datasets import (
    background_class_id,
    class_names,
    num_classes,
)
from repro.data.ontology import ATTRIBUTE_FAMILIES, category_names


class TestBuildWindowDataset:
    def test_sizes(self, tiny_dataset):
        assert len(tiny_dataset) == 40 + 12 + 12
        assert tiny_dataset.images.shape[1:] == (3, 32, 32)

    def test_class_vocabulary(self):
        assert class_names()[-1] == "background"
        assert num_classes() == len(category_names()) + 1

    def test_labels_in_range(self, tiny_dataset):
        assert tiny_dataset.class_labels.min() >= 0
        assert tiny_dataset.class_labels.max() < num_classes()

    def test_background_attribute_masked(self, tiny_dataset):
        non_object = tiny_dataset.objectness < 0.5
        for family in ATTRIBUTE_FAMILIES:
            labels = tiny_dataset.attribute_labels[family]
            assert (labels[non_object] == -1).all()

    def test_object_attributes_labelled(self, tiny_dataset):
        is_object = tiny_dataset.objectness > 0.5
        for family, vocab in ATTRIBUTE_FAMILIES.items():
            labels = tiny_dataset.attribute_labels[family][is_object]
            assert (labels >= 0).all() and (labels < len(vocab)).all()

    def test_profiles_align_with_objectness(self, tiny_dataset):
        for profile, obj in zip(tiny_dataset.profiles, tiny_dataset.objectness):
            assert (profile is not None) == bool(obj > 0.5)

    def test_deterministic(self):
        a = build_window_dataset(seed=3, num_category_objects=10,
                                 num_distractors=5, num_background=5)
        b = build_window_dataset(seed=3, num_category_objects=10,
                                 num_distractors=5, num_background=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.class_labels, b.class_labels)

    def test_subset(self, tiny_dataset):
        sub = tiny_dataset.subset([0, 2, 4])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.images[1], tiny_dataset.images[2])
        assert sub.profiles[1] is tiny_dataset.profiles[2]


class TestTaskWindows:
    def test_positive_negative_counts(self):
        task = get_task("stop_control")
        ds = build_task_windows(task, seed=0, num_positive=30, num_negative=50)
        assert len(ds) == 80
        assert int(ds.task_labels.sum()) == 30

    def test_positives_satisfy_predicate(self):
        task = get_task("biohazard_sweep")
        ds = build_task_windows(task, seed=1, num_positive=25, num_negative=25)
        for profile, label in zip(ds.profiles, ds.task_labels):
            if label > 0.5:
                assert profile is not None and task.matches(profile)
            elif profile is not None:
                assert not task.matches(profile)

    def test_hard_negatives_present(self):
        task = get_task("valve_inspection")
        ds = build_task_windows(task, seed=2, num_positive=20, num_negative=40,
                                hard_negative_fraction=0.5)
        negatives_with_objects = sum(
            1 for profile, label in zip(ds.profiles, ds.task_labels)
            if label < 0.5 and profile is not None
        )
        assert negatives_with_objects >= 15


class TestFewShot:
    def test_split_counts(self):
        task = get_task("roadside_hazards")
        ds = build_task_windows(task, seed=0, num_positive=30, num_negative=30)
        support, query = few_shot_split(ds, shots=5, seed=1)
        assert len(support) == 10
        assert len(support) + len(query) == len(ds)
        assert int(support.task_labels.sum()) == 5

    def test_split_disjoint(self):
        task = get_task("roadside_hazards")
        ds = build_task_windows(task, seed=0, num_positive=20, num_negative=20)
        support, query = few_shot_split(ds, shots=3, seed=2)
        # images are unique per window, so disjointness is checkable by value
        support_keys = {img.tobytes() for img in support.images}
        query_keys = {img.tobytes() for img in query.images}
        assert not (support_keys & query_keys)

    def test_too_many_shots(self):
        task = get_task("roadside_hazards")
        ds = build_task_windows(task, seed=0, num_positive=4, num_negative=10)
        with pytest.raises(ValueError):
            few_shot_split(ds, shots=5)

    def test_requires_task_labels(self, tiny_dataset):
        with pytest.raises(ValueError):
            few_shot_split(tiny_dataset, shots=2)


class TestBatchIterator:
    def test_covers_everything_once(self, tiny_dataset):
        seen = 0
        for batch in batch_iterator(tiny_dataset, 16, seed=0):
            seen += len(batch)
        assert seen == len(tiny_dataset)

    def test_batch_size_respected(self, tiny_dataset):
        sizes = [len(b) for b in batch_iterator(tiny_dataset, 16, seed=0)]
        assert all(s == 16 for s in sizes[:-1])
        assert sizes[-1] <= 16

    def test_no_shuffle_preserves_order(self, tiny_dataset):
        first = next(iter(batch_iterator(tiny_dataset, 8, shuffle=False)))
        np.testing.assert_array_equal(first.images, tiny_dataset.images[:8])

    def test_shuffle_changes_order(self, tiny_dataset):
        a = next(iter(batch_iterator(tiny_dataset, 8, seed=0)))
        b = next(iter(batch_iterator(tiny_dataset, 8, seed=1)))
        assert not np.array_equal(a.images, b.images)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            list(batch_iterator(tiny_dataset, 0))
