"""Vision Transformer: config validation, shapes, attention, determinism."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadSelfAttention,
    PatchEmbedding,
    TransformerBlock,
    TransformerEncoder,
    VisionTransformer,
    ViTConfig,
)
from repro.tensor import Tensor, check_gradient, randn


class TestViTConfig:
    def test_divisibility_checks(self):
        with pytest.raises(ValueError):
            ViTConfig(image_size=30, patch_size=8)
        with pytest.raises(ValueError):
            ViTConfig(dim=50, num_heads=4)

    def test_token_accounting(self):
        cfg = ViTConfig(image_size=32, patch_size=8)
        assert cfg.num_patches == 16
        assert cfg.num_tokens == 17
        assert cfg.patch_dim == 3 * 64

    def test_presets_ordering(self):
        teacher = ViTConfig.teacher(4)
        student = ViTConfig.student(4)
        assert teacher.dim > student.dim
        assert teacher.depth > student.depth


class TestPatchEmbedding:
    def test_patch_extraction_shape(self, tiny_vit_config):
        pe = PatchEmbedding(tiny_vit_config, rng=np.random.default_rng(0))
        images = randn(2, 3, 16, 16, rng=np.random.default_rng(1))
        patches = pe.extract_patches(images)
        assert patches.shape == (2, tiny_vit_config.num_patches,
                                 tiny_vit_config.patch_dim)

    def test_patch_content_is_rearrangement(self, tiny_vit_config):
        pe = PatchEmbedding(tiny_vit_config, rng=np.random.default_rng(0))
        images = randn(1, 3, 16, 16, rng=np.random.default_rng(2))
        patches = pe.extract_patches(images).data
        # first patch = top-left 8x8 block, channel-major
        manual = images.data[0, :, :8, :8].reshape(-1)
        np.testing.assert_allclose(patches[0, 0], manual, rtol=1e-6)

    def test_projection_shape(self, tiny_vit_config):
        pe = PatchEmbedding(tiny_vit_config, rng=np.random.default_rng(0))
        images = randn(2, 3, 16, 16, rng=np.random.default_rng(1))
        out = pe(images)
        assert out.shape == (2, tiny_vit_config.num_patches, tiny_vit_config.dim)


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(16, 4, rng=np.random.default_rng(0))
        x = randn(2, 5, 16, rng=np.random.default_rng(1))
        assert attn(x).shape == (2, 5, 16)

    def test_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_attention_rows_sum_to_one(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0),
                                      store_attention=True)
        x = randn(1, 4, 8, rng=np.random.default_rng(1))
        attn(x)
        probs = attn.last_attention
        assert probs.shape == (1, 2, 4, 4)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)

    def test_gradient_through_attention(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        x = randn(1, 3, 8, rng=np.random.default_rng(1), requires_grad=True)
        ok, err = check_gradient(lambda t: attn(t), [x], atol=2e-2)
        assert ok, err

    def test_permutation_equivariance(self):
        """Self-attention without position info commutes with token permutation."""
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        attn.eval()
        x = randn(1, 5, 8, rng=np.random.default_rng(1))
        perm = np.array([3, 0, 4, 1, 2])
        out = attn(x).data
        out_permuted = attn(Tensor(x.data[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_permuted, atol=1e-5)


class TestTransformerBlocks:
    def test_block_shape_preserved(self):
        block = TransformerBlock(16, 4, rng=np.random.default_rng(0))
        x = randn(2, 6, 16, rng=np.random.default_rng(1))
        assert block(x).shape == (2, 6, 16)

    def test_encoder_depth(self):
        enc = TransformerEncoder(3, 16, 4, rng=np.random.default_rng(0))
        assert len(enc.blocks) == 3

    def test_encoder_hidden_capture(self):
        enc = TransformerEncoder(2, 8, 2, rng=np.random.default_rng(0),
                                 store_hidden=True)
        x = randn(1, 3, 8, rng=np.random.default_rng(1))
        enc(x)
        assert len(enc.hidden_states) == 2


class TestVisionTransformer:
    def test_forward_contract(self, tiny_vit):
        x = randn(3, 3, 16, 16, rng=np.random.default_rng(0))
        out = tiny_vit(x)
        assert out["class_logits"].shape == (3, tiny_vit.config.num_classes)
        assert out["cls_embedding"].shape == (3, tiny_vit.config.dim)
        for name, card in tiny_vit.config.attribute_heads:
            assert out["attributes"][name].shape == (3, card)

    def test_deterministic_given_seed(self, tiny_vit_config):
        a = VisionTransformer(tiny_vit_config, rng=np.random.default_rng(5))
        b = VisionTransformer(tiny_vit_config, rng=np.random.default_rng(5))
        x = randn(1, 3, 16, 16, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(
            a(x)["class_logits"].data, b(x)["class_logits"].data
        )

    def test_classify(self, tiny_vit):
        x = randn(4, 3, 16, 16, rng=np.random.default_rng(0))
        preds = tiny_vit.classify(x)
        assert preds.shape == (4,)
        assert preds.dtype.kind == "i"

    def test_flops_positive_and_ordered(self):
        t = VisionTransformer(ViTConfig.teacher(4), rng=np.random.default_rng(0))
        s = VisionTransformer(ViTConfig.student(4), rng=np.random.default_rng(0))
        assert t.flops_per_image() > s.flops_per_image() > 0

    def test_gradient_flows_to_all_parameters(self, tiny_vit):
        tiny_vit.train()
        x = randn(2, 3, 16, 16, rng=np.random.default_rng(0))
        out = tiny_vit(x)
        loss = out["class_logits"].sum()
        for attr in out["attributes"].values():
            loss = loss + attr.sum()
        tiny_vit.zero_grad()
        loss.backward()
        missing = [name for name, p in tiny_vit.named_parameters() if p.grad is None]
        assert not missing, f"no gradient reached: {missing}"
