"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, softmax, check_gradient
from repro.tensor.tensor import _unbroadcast

FLOATS = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                   allow_infinity=False, width=32)


def small_arrays(max_side=4, min_dims=1, max_dims=3):
    return hnp.arrays(
        dtype=np.float32,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims,
                               min_side=1, max_side=max_side),
        elements=FLOATS,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_unbroadcast_roundtrip(x):
    """Broadcasting then unbroadcasting a gradient preserves totals."""
    target_shape = x.shape
    broadcast_shape = (2,) + target_shape
    grad = np.broadcast_to(x, broadcast_shape).copy()
    reduced = _unbroadcast(grad, target_shape)
    assert reduced.shape == target_shape
    np.testing.assert_allclose(reduced, 2 * x, rtol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_is_distribution(x):
    s = softmax(Tensor(x), axis=-1).data
    np.testing.assert_allclose(s.sum(axis=-1), np.ones(s.shape[:-1]),
                               rtol=1e-4, atol=1e-5)
    assert (s >= 0).all()


@settings(max_examples=30, deadline=None)
@given(
    hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4).flatmap(
        lambda shape: st.tuples(
            hnp.arrays(np.float32, shape, elements=FLOATS),
            hnp.arrays(np.float32, shape, elements=FLOATS),
        )
    )
)
def test_add_commutes(pair):
    a, b = pair
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_array_equal(left, right)
    assert left.shape == a.shape


@settings(max_examples=30, deadline=None)
@given(small_arrays(min_dims=2, max_dims=2))
def test_transpose_involution(x):
    t = Tensor(x)
    np.testing.assert_array_equal(t.T.T.data, x)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sum_backward_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(small_arrays(), st.floats(min_value=-3, max_value=3, allow_nan=False,
                                 width=32))
def test_scalar_mul_backward(x, c):
    t = Tensor(x, requires_grad=True)
    (t * float(c)).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, np.float32(c)), rtol=1e-5)


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(np.float32, (3, 4), elements=FLOATS),
    hnp.arrays(np.float32, (4, 2), elements=FLOATS),
)
def test_matmul_linearity_in_grad(a, b):
    """d(sum(A@B))/dA equals the row-broadcast of B's column sums."""
    ta = Tensor(a, requires_grad=True)
    (ta @ Tensor(b)).sum().backward()
    expected = np.tile(b.sum(axis=1), (3, 1))
    np.testing.assert_allclose(ta.grad, expected, rtol=1e-4, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
def test_reshape_preserves_data(rows, cols):
    x = np.arange(rows * cols, dtype=np.float32)
    t = Tensor(x)
    np.testing.assert_array_equal(t.reshape(rows, cols).data.ravel(), x)
