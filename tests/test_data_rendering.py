"""Renderer: output contracts and attribute distinguishability."""

import numpy as np
import pytest

from repro.data.ontology import ATTRIBUTE_FAMILIES, COLOR_RGB, AttributeProfile
from repro.data.rendering import (
    WINDOW_SIZE,
    _shape_mask,
    render_background,
    render_clutter,
    render_object,
)


def profile(**overrides):
    base = dict(shape="circle", color="red", size="large",
                texture="solid", border="none")
    base.update(overrides)
    return AttributeProfile(**base)


class TestContracts:
    def test_output_shape_and_range(self):
        rng = np.random.default_rng(0)
        img = render_object(profile(), rng=rng)
        assert img.shape == (3, WINDOW_SIZE, WINDOW_SIZE)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_background_contract(self):
        bg = render_background(np.random.default_rng(0))
        assert bg.shape == (3, WINDOW_SIZE, WINDOW_SIZE)
        assert bg.max() <= 1.0

    def test_clutter_contract(self):
        img = render_clutter(np.random.default_rng(0))
        assert img.shape == (3, WINDOW_SIZE, WINDOW_SIZE)

    def test_custom_size(self):
        img = render_object(profile(), rng=np.random.default_rng(0), size=48)
        assert img.shape == (3, 48, 48)

    def test_deterministic_given_rng(self):
        a = render_object(profile(), rng=np.random.default_rng(9))
        b = render_object(profile(), rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_jitter_varies_output(self):
        rng = np.random.default_rng(0)
        a = render_object(profile(), rng=rng)
        b = render_object(profile(), rng=rng)
        assert not np.array_equal(a, b)


class TestShapeMasks:
    @pytest.mark.parametrize("shape", ATTRIBUTE_FAMILIES["shape"])
    def test_mask_nonempty_and_bounded(self, shape):
        mask = _shape_mask(shape, 32, 0.4)
        assert mask.any()
        assert mask.mean() < 0.9  # not the whole canvas

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            _shape_mask("hexagon", 32, 0.4)

    def test_size_ordering(self):
        small = _shape_mask("circle", 32, 0.28).sum()
        large = _shape_mask("circle", 32, 0.47).sum()
        assert large > small

    def test_ring_has_hole(self):
        ring = _shape_mask("ring", 64, 0.45)
        disc = _shape_mask("circle", 64, 0.45)
        assert ring.sum() < disc.sum()
        assert not ring[32, 32]  # center empty


class TestAttributeVisibility:
    def test_color_dominates_object_pixels(self):
        rng = np.random.default_rng(0)
        img = render_object(profile(color="blue", texture="solid"),
                            rng=rng, noise_std=0.0)
        # brightest pixels should be blue-ish
        bright = img.reshape(3, -1)[:, img.sum(axis=0).reshape(-1).argmax()]
        assert bright[2] > bright[0] and bright[2] > bright[1]

    def test_striped_adds_high_frequency_structure(self):
        solid = render_object(profile(texture="solid"),
                              rng=np.random.default_rng(1), noise_std=0.0)
        striped = render_object(profile(texture="striped"),
                                rng=np.random.default_rng(1), noise_std=0.0)
        # stripes create more local edges than a solid fill
        solid_edges = np.abs(np.diff(solid, axis=-1)).mean()
        striped_edges = np.abs(np.diff(striped, axis=-1)).mean()
        assert striped_edges > solid_edges
        assert not np.array_equal(solid, striped)

    def test_border_changes_image(self):
        none = render_object(profile(border="none"),
                             rng=np.random.default_rng(2), noise_std=0.0)
        thick = render_object(profile(border="thick"),
                              rng=np.random.default_rng(2), noise_std=0.0)
        assert not np.array_equal(none, thick)

    def test_noise_std_zero_is_clean(self):
        img = render_background(np.random.default_rng(0), noise_std=0.0)
        # background without noise is smooth: tiny local variance
        assert np.abs(np.diff(img, axis=-1)).max() < 0.05
