"""Training and distillation loops (tiny configs, a few epochs)."""

import numpy as np
import pytest

from repro.data import attribute_head_spec, build_window_dataset
from repro.data.datasets import num_classes
from repro.distill import (
    DistillationConfig,
    Distiller,
    ModelTrainer,
    TrainingConfig,
    evaluate_model,
)
from repro.nn import VisionTransformer, ViTConfig


@pytest.fixture(scope="module")
def train_set():
    return build_window_dataset(seed=31, num_category_objects=64,
                                num_distractors=16, num_background=16)


@pytest.fixture(scope="module")
def trained_teacher(train_set):
    model = VisionTransformer(
        ViTConfig.student(num_classes(), attribute_head_spec()),
        rng=np.random.default_rng(0),
    )
    ModelTrainer(model, TrainingConfig(epochs=6, batch_size=32,
                                       learning_rate=2e-3, seed=0)).fit(train_set)
    return model


class TestModelTrainer:
    def test_loss_decreases(self, train_set):
        model = VisionTransformer(
            ViTConfig.student(num_classes(), attribute_head_spec()),
            rng=np.random.default_rng(1),
        )
        trainer = ModelTrainer(model, TrainingConfig(epochs=6, batch_size=32,
                                                     learning_rate=2e-3, seed=0))
        history = trainer.fit(train_set)
        assert history[-1]["loss"] < history[0]["loss"] * 0.9

    def test_accuracy_above_chance(self, trained_teacher, train_set):
        metrics = evaluate_model(trained_teacher, train_set)
        assert metrics["val_accuracy"] > 2.0 / num_classes()
        assert "val_attribute_accuracy" in metrics

    def test_eval_mode_after_fit(self, trained_teacher):
        assert not trained_teacher.training

    def test_history_records_epochs(self, trained_teacher):
        pass  # covered implicitly; placeholder keeps intent explicit


class TestDistiller:
    def test_student_learns_from_teacher(self, trained_teacher, train_set):
        student = VisionTransformer(
            ViTConfig.tiny(num_classes(), attribute_head_spec()).__class__(
                image_size=32, patch_size=8, dim=32, depth=1, num_heads=2,
                num_classes=num_classes(),
                attribute_heads=attribute_head_spec(),
            ),
            rng=np.random.default_rng(2),
        )
        config = DistillationConfig(epochs=4, batch_size=32,
                                    learning_rate=2e-3, seed=0)
        distiller = Distiller(trained_teacher, student, config,
                              rng=np.random.default_rng(2))
        history = distiller.distill(train_set)
        assert history[-1]["loss"] < history[0]["loss"]
        metrics = evaluate_model(student, train_set)
        assert metrics["val_accuracy"] > 1.5 / num_classes()

    def test_distilled_beats_scratch_with_same_budget(self, trained_teacher,
                                                      train_set):
        """Distillation transfers teacher knowledge: under a tiny epoch
        budget the distilled student should do at least as well as an
        identically-seeded scratch student."""
        def make_student():
            return VisionTransformer(
                ViTConfig(image_size=32, patch_size=8, dim=32, depth=1,
                          num_heads=2, num_classes=num_classes(),
                          attribute_heads=attribute_head_spec()),
                rng=np.random.default_rng(5),
            )

        epochs = 5
        distilled = make_student()
        Distiller(trained_teacher, distilled,
                  DistillationConfig(epochs=epochs, batch_size=32,
                                     learning_rate=2e-3, seed=0),
                  rng=np.random.default_rng(5)).distill(train_set)
        scratch = make_student()
        ModelTrainer(scratch, TrainingConfig(epochs=epochs, batch_size=32,
                                             learning_rate=2e-3, seed=0)
                     ).fit(train_set)
        acc_distilled = evaluate_model(distilled, train_set)["val_accuracy"]
        acc_scratch = evaluate_model(scratch, train_set)["val_accuracy"]
        assert acc_distilled >= acc_scratch - 0.05

    def test_attention_transfer_requires_matching_tokens(self, trained_teacher):
        student = VisionTransformer(
            ViTConfig(image_size=16, patch_size=8, dim=32, depth=1, num_heads=2,
                      num_classes=num_classes()),
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            Distiller(trained_teacher, student,
                      DistillationConfig(attention_weight=0.5))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DistillationConfig(alpha=1.5)
        with pytest.raises(ValueError):
            DistillationConfig(temperature=0.0)

    def test_layer_map_covers_student(self, trained_teacher, train_set):
        student = VisionTransformer(
            ViTConfig.student(num_classes(), attribute_head_spec()),
            rng=np.random.default_rng(3),
        )
        distiller = Distiller(trained_teacher, student,
                              DistillationConfig(attention_weight=0.1))
        mapping = distiller._layer_map()
        assert len(mapping) == student.config.depth
        assert all(0 <= t < trained_teacher.config.depth for _, t in mapping)
        # last student layer maps to last teacher layer
        assert mapping[-1][1] == trained_teacher.config.depth - 1
