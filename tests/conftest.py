"""Shared fixtures: tiny datasets and models sized for fast unit tests."""

import numpy as np
import pytest

from repro.data import attribute_head_spec, build_window_dataset
from repro.data.datasets import num_classes
from repro.nn import VisionTransformer, ViTConfig


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small mixed window dataset (reused read-only across tests)."""
    return build_window_dataset(
        seed=11, num_category_objects=40, num_distractors=12, num_background=12,
    )


@pytest.fixture(scope="session")
def tiny_vit_config():
    return ViTConfig.tiny(num_classes=num_classes(),
                          attribute_heads=attribute_head_spec())


@pytest.fixture()
def tiny_vit(tiny_vit_config):
    model = VisionTransformer(tiny_vit_config, rng=np.random.default_rng(7))
    model.eval()
    return model


@pytest.fixture(scope="session")
def student_vit():
    """A deterministic untrained student-sized ViT at full window size."""
    config = ViTConfig.student(num_classes=num_classes(),
                               attribute_heads=attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(3))
    model.eval()
    return model
