"""Systolic array: functional exactness and timing-model properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import AcceleratorConfig, SystolicArray
from repro.hw.isa import GemmOp


@pytest.fixture(scope="module")
def array():
    return SystolicArray(AcceleratorConfig.edge_default())


class TestFunctional:
    def test_bit_exact_int8(self, array):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, size=(17, 48)).astype(np.int32)
        w = rng.integers(-128, 128, size=(48, 96)).astype(np.int32)
        result, _ = array.run(a, w)
        np.testing.assert_array_equal(result, a.astype(np.int64) @ w.astype(np.int64))

    def test_non_multiple_dims(self, array):
        """Dims not divisible by the array size still compute exactly."""
        rng = np.random.default_rng(1)
        a = rng.integers(-8, 8, size=(5, 19)).astype(np.int32)
        w = rng.integers(-8, 8, size=(19, 23)).astype(np.int32)
        result, _ = array.run(a, w)
        np.testing.assert_array_equal(result, a.astype(np.int64) @ w.astype(np.int64))

    def test_rejects_bad_shapes(self, array):
        with pytest.raises(ValueError):
            array.run(np.zeros((2, 3), np.int32), np.zeros((4, 5), np.int32))
        with pytest.raises(ValueError):
            array.run(np.zeros(3, np.int32), np.zeros((3, 2), np.int32))

    def test_no_accumulator_overflow_at_int8(self, array):
        """Worst-case int8 dot products stay far below int64 limits."""
        a = np.full((4, 2048), 127, np.int32)
        w = np.full((2048, 4), 127, np.int32)
        result, _ = array.run(a, w)
        assert result.max() == 127 * 127 * 2048


class TestTiming:
    def test_tiles_counting(self, array):
        cfg = array.config  # 16x16
        assert array.tiles_for(16, 16) == 1
        assert array.tiles_for(17, 16) == 2
        assert array.tiles_for(48, 96) == 3 * 6

    def test_cycle_floor(self, array):
        """A GEMM can never finish faster than macs / peak_macs_per_cycle."""
        op = GemmOp("g", m=17, k=48, n=144)
        timing = array.gemm_cycles(op)
        assert timing.cycles >= op.macs / array.config.peak_macs_per_cycle

    def test_utilization_bounds(self, array):
        op = GemmOp("g", m=64, k=64, n=64)
        timing = array.gemm_cycles(op)
        assert 0.0 < timing.utilization <= 1.0

    def test_large_m_improves_utilization(self, array):
        """Streaming more rows amortizes fill/drain → higher utilization."""
        small = array.gemm_cycles(GemmOp("g", m=4, k=64, n=64))
        large = array.gemm_cycles(GemmOp("g", m=256, k=64, n=64))
        assert large.utilization > small.utilization

    def test_cycles_scale_with_tiles(self, array):
        one = array.gemm_cycles(GemmOp("g", m=16, k=16, n=16))
        four = array.gemm_cycles(GemmOp("g", m=16, k=32, n=32))
        assert four.tiles == 4 * one.tiles
        assert four.cycles == 4 * one.cycles


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
)
def test_systolic_exactness_property(m, k, n):
    """For any shape, the tiled array equals the reference matmul."""
    array = SystolicArray(AcceleratorConfig(array_rows=8, array_cols=8))
    rng = np.random.default_rng(m * 10000 + k * 100 + n)
    a = rng.integers(-128, 128, size=(m, k)).astype(np.int32)
    w = rng.integers(-128, 128, size=(k, n)).astype(np.int32)
    result, timing = array.run(a, w)
    np.testing.assert_array_equal(result, a.astype(np.int64) @ w.astype(np.int64))
    assert timing.cycles >= m  # must at least stream every row once
