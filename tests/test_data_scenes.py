"""Scene generation: layout invariants, annotations, densities."""

import numpy as np
import pytest

from repro.data import Scene, SceneConfig, SceneGenerator
from repro.data.ontology import category_of_profile


class TestSceneConfig:
    def test_density_validation(self):
        with pytest.raises(ValueError):
            SceneConfig(object_density=0.6, distractor_density=0.3,
                        clutter_density=0.3)

    def test_image_size(self):
        assert SceneConfig(grid=4, cell_size=32).image_size == 128


class TestSceneGenerator:
    def test_deterministic_given_seed(self):
        a = SceneGenerator(seed=5).generate()
        b = SceneGenerator(seed=5).generate()
        np.testing.assert_array_equal(a.image, b.image)
        assert len(a.objects) == len(b.objects)

    def test_image_contract(self):
        scene = SceneGenerator(seed=0).generate()
        assert scene.image.shape == (3, 96, 96)
        assert scene.image.dtype == np.float32
        assert 0.0 <= scene.image.min() and scene.image.max() <= 1.0

    def test_objects_in_distinct_cells(self):
        scene = SceneGenerator(seed=1).generate()
        cells = [obj.cell for obj in scene.objects]
        assert len(cells) == len(set(cells))

    def test_bboxes_align_with_cells(self):
        scene = SceneGenerator(seed=2).generate()
        for obj in scene.objects:
            row, col = obj.cell
            assert obj.bbox == scene.cell_bbox(row, col)

    def test_category_labels_consistent(self):
        scene = SceneGenerator(seed=3).generate()
        for obj in scene.objects:
            recovered = category_of_profile(obj.profile)
            if obj.category is None:
                assert recovered is None
            else:
                assert recovered is not None

    def test_crop_matches_cell(self):
        scene = SceneGenerator(seed=4).generate()
        for row, col, bbox, window in scene.iter_cells():
            assert window.shape == (3, scene.cell_size, scene.cell_size)
            np.testing.assert_array_equal(window, scene.crop(bbox))

    def test_object_density_controls_count(self):
        dense = SceneGenerator(SceneConfig(object_density=0.9,
                                           distractor_density=0.0,
                                           clutter_density=0.0), seed=0)
        sparse = SceneGenerator(SceneConfig(object_density=0.1,
                                            distractor_density=0.0,
                                            clutter_density=0.0), seed=0)
        dense_count = np.mean([len(dense.generate().objects) for _ in range(20)])
        sparse_count = np.mean([len(sparse.generate().objects) for _ in range(20)])
        assert dense_count > sparse_count * 2

    def test_category_weights(self):
        config = SceneConfig(category_weights={"valve_wheel": 1.0},
                             object_density=0.9, distractor_density=0.0,
                             clutter_density=0.0)
        gen = SceneGenerator(config, seed=0)
        for scene in gen.generate_batch(5):
            for obj in scene.objects:
                assert obj.category == "valve_wheel"

    def test_bad_category_weights(self):
        with pytest.raises(ValueError):
            SceneGenerator(SceneConfig(category_weights={"unknown": 1.0}))

    def test_generate_batch_count(self):
        assert len(SceneGenerator(seed=0).generate_batch(7)) == 7

    def test_object_center_property(self):
        scene = SceneGenerator(seed=6).generate()
        for obj in scene.objects:
            cx, cy = obj.center
            x0, y0, x1, y1 = obj.bbox
            assert x0 < cx < x1 and y0 < cy < y1
