"""Detection pipeline: adapters, scanning, task conditioning."""

import numpy as np
import pytest

from repro.data import SceneConfig, SceneGenerator, get_task
from repro.data.datasets import background_class_id, num_classes
from repro.data.scenes import Scene
from repro.detect import TaskDetector, predict_windows, task_accuracy
from repro.kg import GraphMatcher, SimulatedLLM
from repro.quant import quantize_vit


@pytest.fixture(scope="module")
def scene():
    return SceneGenerator(SceneConfig(), seed=21).generate()


class TestPredictWindows:
    def test_float_model_contract(self, student_vit):
        windows = np.random.default_rng(0).random((5, 3, 32, 32)).astype(np.float32)
        out = predict_windows(student_vit, windows)
        assert out["class_probs"].shape == (5, num_classes())
        np.testing.assert_allclose(out["class_probs"].sum(axis=-1), 1.0, rtol=1e-4)
        for family, probs in out["attribute_probs"].items():
            np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-4)

    def test_quantized_model_contract(self, student_vit):
        rng = np.random.default_rng(1)
        calibration = rng.random((16, 3, 32, 32)).astype(np.float32)
        q = quantize_vit(student_vit, calibration)
        out = predict_windows(q, calibration[:4])
        assert out["class_probs"].shape == (4, num_classes())

    def test_batching_consistent(self, student_vit):
        windows = np.random.default_rng(2).random((10, 3, 32, 32)).astype(np.float32)
        small = predict_windows(student_vit, windows, batch_size=3)
        large = predict_windows(student_vit, windows, batch_size=64)
        np.testing.assert_allclose(small["class_probs"], large["class_probs"],
                                   atol=1e-5)

    def test_zero_windows_float_model(self, student_vit):
        """Regression: an empty batch used to crash on np.concatenate([])."""
        out = predict_windows(student_vit, np.zeros((0, 3, 32, 32), np.float32))
        assert out["class_probs"].shape == (0, num_classes())
        reference = predict_windows(
            student_vit,
            np.random.default_rng(3).random((2, 3, 32, 32)).astype(np.float32))
        for family, probs in reference["attribute_probs"].items():
            assert out["attribute_probs"][family].shape == (0, probs.shape[1])
        assert ("task_probs" in out) == ("task_probs" in reference)

    def test_zero_windows_quantized_model(self, student_vit):
        rng = np.random.default_rng(4)
        calibration = rng.random((8, 3, 32, 32)).astype(np.float32)
        q = quantize_vit(student_vit, calibration)
        out = predict_windows(q, np.zeros((0, 3, 32, 32), np.float32))
        assert out["class_probs"].shape == (0, num_classes())


class TestTaskDetector:
    def test_grid_window_count(self, student_vit, scene):
        detector = TaskDetector(student_vit, score_threshold=0.0)
        windows, boxes = detector._windows(scene)
        assert windows.shape[0] == scene.grid ** 2 == len(boxes)

    def test_sliding_stride(self, student_vit, scene):
        detector = TaskDetector(student_vit, score_threshold=0.0)
        windows, _ = detector._windows(scene, stride=16)
        expected = ((scene.size - scene.cell_size) // 16 + 1) ** 2
        assert windows.shape[0] == expected

    def test_threshold_zero_fires_everywhere(self, student_vit, scene):
        detector = TaskDetector(student_vit, score_threshold=0.0)
        detections = detector.detect(scene)
        assert len(detections) == scene.grid ** 2

    def test_threshold_one_fires_nowhere(self, student_vit, scene):
        detector = TaskDetector(student_vit, score_threshold=1.0)
        assert detector.detect(scene) == []

    def test_detections_sorted_and_bounded(self, student_vit, scene):
        detector = TaskDetector(student_vit, score_threshold=0.0)
        detections = detector.detect(scene)
        scores = [d.score for d in detections]
        assert scores == sorted(scores, reverse=True)
        for d in detections:
            assert 0.0 <= d.score <= 1.0
            assert 0.0 <= d.objectness <= 1.0
            assert 0.0 <= d.task_score <= 1.0

    def test_matcher_changes_scores(self, student_vit, scene):
        task = get_task("stop_control")
        kg = SimulatedLLM().generate_for_task(task)
        plain = TaskDetector(student_vit, matcher=None, score_threshold=0.0)
        tasked = TaskDetector(student_vit, matcher=GraphMatcher(kg),
                              score_threshold=0.0)
        plain_scores = {d.bbox: d.score for d in plain.detect(scene)}
        task_scores = {d.bbox: d.score for d in tasked.detect(scene)}
        # task conditioning can only lower the combined score
        for bbox, score in task_scores.items():
            assert score <= plain_scores[bbox] + 1e-9

    def test_score_threshold_validation(self, student_vit):
        with pytest.raises(ValueError):
            TaskDetector(student_vit, score_threshold=1.5)

    def test_scene_smaller_than_window_yields_no_detections(self, student_vit):
        """Regression: a scene below one cell used to crash np.stack([])."""
        tiny = Scene(image=np.zeros((3, 16, 16), dtype=np.float32),
                     objects=[], grid=1, cell_size=32)
        for vectorized in (True, False):
            detector = TaskDetector(student_vit, score_threshold=0.0,
                                    vectorized=vectorized)
            windows, boxes = detector._windows(tiny)
            assert windows.shape == (0, 3, 32, 32)
            assert boxes == []
            assert detector.detect(tiny) == []

    def test_windows_vectorized_matches_loop(self, student_vit, scene):
        detector = TaskDetector(student_vit, score_threshold=0.0)
        for stride in (None, 16, 24):
            vec_windows, vec_boxes = detector._windows_vectorized(scene, stride=stride)
            loop_windows, loop_boxes = detector._windows_loop(scene, stride=stride)
            assert vec_boxes == loop_boxes
            np.testing.assert_array_equal(vec_windows, loop_windows)

    def test_detect_vectorized_matches_reference(self, student_vit, scene):
        task = get_task("stop_control")
        matcher = GraphMatcher(SimulatedLLM().generate_for_task(task))
        for stride in (None, 16):
            results = []
            for vectorized in (True, False):
                detector = TaskDetector(student_vit, matcher=matcher,
                                        score_threshold=0.0,
                                        vectorized=vectorized)
                results.append(detector.detect(scene, stride=stride))
            vec, ref = results
            assert [d.bbox for d in vec] == [d.bbox for d in ref]
            np.testing.assert_allclose([d.score for d in vec],
                                       [d.score for d in ref], rtol=1e-12)

    def test_task_accuracy_range(self, student_vit):
        task = get_task("roadside_hazards")
        scenes = SceneGenerator(SceneConfig(), seed=5).generate_batch(3)
        detector = TaskDetector(student_vit, score_threshold=0.5)
        acc = task_accuracy(detector, scenes, task)
        assert 0.0 <= acc <= 1.0
        acc_hard = task_accuracy(detector, scenes, task, object_cells_only=True)
        assert 0.0 <= acc_hard <= 1.0
