"""Task library: predicate semantics and library consistency."""

import numpy as np
import pytest

from repro.data.ontology import sample_profile
from repro.data.tasks import (
    TASK_LIBRARY,
    AttributePredicate,
    TaskDefinition,
    _pred,
    get_task,
    task_names,
)


class TestAttributePredicate:
    def test_allowed_only(self):
        pred = _pred(allowed={"color": ("red", "blue")})
        rng = np.random.default_rng(0)
        red = sample_profile(rng, fixed={"color": "red"})
        green = sample_profile(rng, fixed={"color": "green"})
        assert pred.matches(red)
        assert not pred.matches(green)

    def test_forbidden_only(self):
        pred = _pred(forbidden={"size": ("small",)})
        rng = np.random.default_rng(0)
        assert not pred.matches(sample_profile(rng, fixed={"size": "small"}))
        assert pred.matches(sample_profile(rng, fixed={"size": "large"}))

    def test_conjunction(self):
        pred = _pred(allowed={"color": ("red",), "shape": ("square",)})
        rng = np.random.default_rng(0)
        both = sample_profile(rng, fixed={"color": "red", "shape": "square"})
        one = sample_profile(rng, fixed={"color": "red", "shape": "circle"})
        assert pred.matches(both)
        assert not pred.matches(one)

    def test_empty_predicate_matches_everything(self):
        pred = AttributePredicate()
        rng = np.random.default_rng(0)
        assert all(pred.matches(sample_profile(rng)) for _ in range(20))

    def test_validation(self):
        with pytest.raises(KeyError):
            AttributePredicate(allowed={"flavor": frozenset({"sweet"})})
        with pytest.raises(ValueError):
            AttributePredicate(allowed={"color": frozenset({"puce"})})

    def test_constrained_families(self):
        pred = _pred(allowed={"color": ("red",)}, forbidden={"size": ("small",)})
        assert pred.constrained_families == ["color", "size"]


class TestTaskLibrary:
    def test_nonempty_and_named(self):
        assert len(TASK_LIBRARY) >= 8
        for name, task in TASK_LIBRARY.items():
            assert task.name == name
            assert task.mission_text
            assert task.domain in {"driving", "healthcare", "industrial"}

    def test_get_task(self):
        assert get_task("cargo_audit").name == "cargo_audit"
        with pytest.raises(KeyError):
            get_task("nonexistent")

    def test_task_names_order(self):
        assert task_names() == list(TASK_LIBRARY)

    @pytest.mark.parametrize("name", list(TASK_LIBRARY))
    def test_each_task_satisfiable(self, name):
        """Every task predicate accepts some profile and rejects some."""
        task = get_task(name)
        rng = np.random.default_rng(0)
        results = [task.matches(sample_profile(rng)) for _ in range(800)]
        assert any(results), f"{name} accepts nothing"
        assert not all(results), f"{name} accepts everything"

    @pytest.mark.parametrize("name", list(TASK_LIBRARY))
    def test_mission_text_mentions_constraints(self, name):
        """Each allowed attribute value appears verbatim in the text (the
        channel the simulated LLM extracts from)."""
        task = get_task(name)
        text = task.mission_text.lower()
        for family, values in task.predicate.allowed.items():
            for value in values:
                assert value in text, (name, family, value)
