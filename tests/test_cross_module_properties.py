"""Cross-module property tests (hypothesis): invariants that must hold
for *any* model configuration, not just the presets."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.datasets import num_classes
from repro.hw import AcceleratorConfig, Compiler, GemmOp, Simulator
from repro.nn import VisionTransformer, ViTConfig
from repro.quant import QuantSpec, quantize_vit


def vit_configs():
    """Random small-but-valid ViT configurations."""
    return st.builds(
        lambda dim_heads, depth, mlp, task_head: ViTConfig(
            image_size=32, patch_size=8,
            dim=dim_heads[0], num_heads=dim_heads[1], depth=depth,
            mlp_ratio=mlp, num_classes=num_classes(),
            with_task_head=task_head,
        ),
        dim_heads=st.sampled_from([(16, 2), (24, 4), (32, 2), (48, 4)]),
        depth=st.integers(min_value=1, max_value=3),
        mlp=st.sampled_from([1.0, 2.0]),
        task_head=st.booleans(),
    )


@settings(max_examples=8, deadline=None)
@given(vit_configs())
def test_compiled_macs_equal_analytic_flops(config):
    """For any architecture, the compiler's MAC ledger matches the
    model's analytic count — no op silently dropped or double-counted."""
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    calibration = np.random.default_rng(1).random((4, 3, 32, 32)).astype(np.float32)
    quantized = quantize_vit(model, calibration)
    program = Compiler(AcceleratorConfig.edge_default()).compile(quantized)
    assert program.total_macs() == model.flops_per_image()


@settings(max_examples=6, deadline=None)
@given(vit_configs(), st.sampled_from([1, 2, 4]))
def test_simulator_latency_positive_and_batch_monotone(config, batch):
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    calibration = np.random.default_rng(1).random((4, 3, 32, 32)).astype(np.float32)
    quantized = quantize_vit(model, calibration)
    accel = AcceleratorConfig.edge_default()
    sim = Simulator(accel)
    small = sim.simulate(Compiler(accel).compile(quantized, batch=batch))
    big = sim.simulate(Compiler(accel).compile(quantized, batch=batch * 2))
    assert 0 < small.latency_s < big.latency_s
    # throughput never degrades with batching on this workload
    assert (big.throughput_inferences_per_s
            >= small.throughput_inferences_per_s * 0.99)


@settings(max_examples=6, deadline=None)
@given(vit_configs())
def test_quantized_forward_matches_float_argmax_mostly(config):
    """w8a8 quantization must preserve most hard predictions for any
    architecture (untrained weights — the hardest case for calibration)."""
    from repro.tensor import Tensor, no_grad

    model = VisionTransformer(config, rng=np.random.default_rng(2))
    images = np.random.default_rng(3).random((12, 3, 32, 32)).astype(np.float32)
    quantized = quantize_vit(model, images)
    with no_grad():
        float_pred = model(Tensor(images))["class_logits"].data.argmax(-1)
    q_pred = quantized.classify(images)
    assert (float_pred == q_pred).mean() >= 0.75


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=96),
    st.integers(min_value=1, max_value=96),
)
def test_gemm_cycle_floor_property(m, k, n):
    """No GEMM finishes faster than its MAC count allows at peak."""
    from repro.hw import SystolicArray

    accel = AcceleratorConfig.edge_default()
    timing = SystolicArray(accel).gemm_cycles(GemmOp("g", m=m, k=k, n=n))
    assert timing.cycles * accel.peak_macs_per_cycle >= m * k * n
    assert 0.0 < timing.utilization <= 1.0
