"""Cascade router: margins, budgets, shedding, calibration, pinning."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.cascade import (
    ESCALATED,
    FAST_PATH,
    SHED,
    CalibrationStore,
    CascadeConfig,
    CascadeRouter,
    CascadeSession,
    EscalationBudget,
    SpecialistRegistry,
    calibrate_margin_threshold,
    scene_cell_accuracy,
)
from repro.core import (
    ConfigurationSelector,
    ITaskPipeline,
    ModelRegistry,
    TaskSpec,
    TaskSpecificConfiguration,
)
from repro.core.registry import CorruptArtifactError
from repro.data import get_task
from repro.data.scenes import SceneConfig, SceneGenerator
from repro.detect import TaskDetector, confidence_margin
from repro.fuzz.runner import build_model_pair
from repro.fuzz.scenario import ModelSpec
from repro.obs import get_registry
from repro.serve.engine import EngineConfig
from repro.serve.session import mission_fingerprint


@pytest.fixture(scope="module")
def model_pair():
    return build_model_pair(ModelSpec())


@pytest.fixture(scope="module")
def scenes():
    generator = SceneGenerator(SceneConfig(grid=2, cell_size=16), seed=42)
    return generator.generate_batch(6)


def make_router(model_pair, threshold=0.0, **config_kwargs):
    float_model, quantized_model = model_pair
    pinned = config_kwargs.pop("pinned", False)
    queue_depth_fn = config_kwargs.pop("queue_depth_fn", None)
    return CascadeRouter(
        TaskDetector(quantized_model, score_threshold=threshold),
        TaskDetector(float_model, score_threshold=threshold),
        config=CascadeConfig(**config_kwargs),
        pinned=pinned,
        queue_depth_fn=queue_depth_fn,
    )


class TestConfidenceMargin:
    def test_empty_scores_is_infinite(self):
        assert confidence_margin(np.array([]), 0.35) == float("inf")

    def test_min_distance_to_threshold(self):
        combined = np.array([0.1, 0.34, 0.9])
        assert confidence_margin(combined, 0.35) == pytest.approx(0.01)


class TestEscalationBudget:
    def test_fraction_zero_denies_everything(self):
        budget = EscalationBudget(0.0, window=4)
        assert not any(budget.try_acquire() for _ in range(10))

    def test_unlimited_fraction_always_grants(self):
        budget = EscalationBudget(1.0, window=4)
        assert all(budget.try_acquire() for _ in range(10))

    def test_sliding_window_grant_pattern(self):
        budget = EscalationBudget(0.5, window=4)
        # grants until 2 escalations sit in the 4-wide window
        assert budget.try_acquire() and budget.try_acquire()
        assert not budget.try_acquire() and not budget.try_acquire()
        # the two denials aged the grants toward the window edge; one
        # more denial evicts the first grant, then grants resume
        assert not budget.try_acquire()
        assert budget.try_acquire()
        assert budget.escalated_in_window <= 2

    def test_fast_path_ages_the_window(self):
        budget = EscalationBudget(0.25, window=4)
        assert budget.try_acquire()
        assert not budget.try_acquire()
        for _ in range(4):
            budget.record_fast_path()
        assert budget.escalated_in_window == 0
        assert budget.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            EscalationBudget(-0.1)
        with pytest.raises(ValueError):
            EscalationBudget(0.5, window=0)


class TestCascadeConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CascadeConfig(margin_threshold=-1.0)
        with pytest.raises(ValueError):
            CascadeConfig(max_escalation_fraction=-0.5)
        with pytest.raises(ValueError):
            CascadeConfig(escalation_window=0)
        with pytest.raises(ValueError):
            CascadeConfig(shed_queue_depth=-1)


class TestRouterRouting:
    def test_no_specialist_is_all_fast_path(self, model_pair, scenes):
        _, quantized_model = model_pair
        router = CascadeRouter(TaskDetector(quantized_model))
        results, decisions = router.detect_batch(scenes)
        assert [d.route for d in decisions] == [FAST_PATH] * len(scenes)
        reference = TaskDetector(quantized_model).detect_batch(scenes)
        assert _detections_equal(results, reference)

    def test_pinned_escalates_every_scene(self, model_pair, scenes):
        router = make_router(model_pair, pinned=True)
        _, decisions = router.detect_batch(scenes)
        assert [d.route for d in decisions] == [ESCALATED] * len(scenes)
        assert all("pinned" in d.reason for d in decisions)

    def test_escalated_scene_returns_specialist_output(self, model_pair,
                                                       scenes):
        float_model, _ = model_pair
        router = make_router(model_pair, pinned=True)
        results, _ = router.detect_batch(scenes)
        reference = TaskDetector(float_model,
                                 score_threshold=0.0).detect_batch(scenes)
        assert _detections_equal(results, reference)

    def test_margin_threshold_splits_routes(self, model_pair, scenes):
        probe = make_router(model_pair)
        _, decisions = probe.detect_batch(scenes)
        margins = sorted(d.margin for d in decisions)
        split = (margins[2] + margins[3]) / 2.0
        router = make_router(model_pair, margin_threshold=split)
        _, decisions = router.detect_batch(scenes)
        for decision in decisions:
            expected = ESCALATED if decision.margin < split else FAST_PATH
            assert decision.route == expected

    def test_decisions_identical_across_paths(self, model_pair, scenes):
        batch_results, batch_decisions = make_router(
            model_pair, margin_threshold=0.5).detect_batch(scenes)
        sequential = [make_router(model_pair, margin_threshold=0.5).detect(s)
                      for s in scenes]
        assert ([d.route for _, d in sequential]
                == [d.route for d in batch_decisions])
        assert ([d.margin for _, d in sequential]
                == [d.margin for d in batch_decisions])
        assert _detections_equal([r for r, _ in sequential], batch_results)

    def test_fraction_zero_sheds_and_keeps_fast_results(self, model_pair,
                                                        scenes):
        _, quantized_model = model_pair

        class CountingDetector(TaskDetector):
            calls = 0

            def detect_batch_with_signals(self, scenes, stride=None):
                type(self).calls += 1
                return super().detect_batch_with_signals(scenes, stride=stride)

            def detect_batch(self, scenes, stride=None):
                type(self).calls += 1
                return super().detect_batch(scenes, stride=stride)

        float_model, _ = model_pair
        specialist = CountingDetector(float_model, score_threshold=0.0)
        router = CascadeRouter(
            TaskDetector(quantized_model, score_threshold=0.0),
            specialist,
            config=CascadeConfig(margin_threshold=1e9,
                                 max_escalation_fraction=0.0))
        results, decisions = router.detect_batch(scenes)
        assert [d.route for d in decisions] == [SHED] * len(scenes)
        assert CountingDetector.calls == 0
        reference = TaskDetector(quantized_model,
                                 score_threshold=0.0).detect_batch(scenes)
        assert _detections_equal(results, reference)

    def test_budget_bounds_escalations(self, model_pair, scenes):
        router = make_router(model_pair, margin_threshold=1e9,
                             max_escalation_fraction=0.5,
                             escalation_window=4)
        _, decisions = router.detect_batch(scenes)
        # every scene desires escalation; the sliding window grants two,
        # denies until the grants age out, then grants again
        assert [d.route for d in decisions] == [
            ESCALATED, ESCALATED, SHED, SHED, SHED, ESCALATED]
        for start in range(len(decisions) - 3):
            window = decisions[start:start + 4]
            assert sum(d.route == ESCALATED for d in window) <= 2

    def test_queue_depth_sheds_escalations(self, model_pair, scenes):
        depths = iter([0, 10, 10, 0, 10, 10])
        router = make_router(model_pair, margin_threshold=1e9,
                             shed_queue_depth=5,
                             queue_depth_fn=lambda: next(depths))
        _, decisions = router.detect_batch(scenes)
        assert [d.route for d in decisions] == [
            ESCALATED, SHED, SHED, ESCALATED, SHED, SHED]
        assert all("queue" in d.reason for d in decisions
                   if d.route == SHED)

    def test_obs_counters_and_margins_recorded(self, model_pair, scenes):
        registry = get_registry()
        before = {route: registry.counter(f"cascade.{route}").value
                  for route in (FAST_PATH, ESCALATED, SHED)}
        router = make_router(model_pair, margin_threshold=0.5)
        _, decisions = router.detect_batch(scenes)
        for route in (FAST_PATH, ESCALATED, SHED):
            expected = sum(d.route == route for d in decisions)
            observed = registry.counter(f"cascade.{route}").value - before[route]
            assert observed == expected

    def test_empty_batch(self, model_pair):
        assert make_router(model_pair).detect_batch([]) == ([], [])


class TestCalibration:
    def test_scene_cell_accuracy_bounds(self, scenes):
        task = get_task("roadside_hazards")
        for scene in scenes:
            value = scene_cell_accuracy(scene, [], task)
            assert 0.0 <= value <= 1.0

    def test_calibration_invariants(self, model_pair, scenes):
        float_model, quantized_model = model_pair
        task = get_task("roadside_hazards")
        calibration = calibrate_margin_threshold(
            TaskDetector(quantized_model, score_threshold=0.0),
            TaskDetector(float_model, score_threshold=0.0),
            scenes, task, specialist_cost=4.5)
        assert calibration.num_scenes == len(scenes)
        assert calibration.frontier
        fractions = [p.escalation_fraction for p in calibration.frontier]
        assert fractions == sorted(fractions)  # higher threshold, more esc
        assert calibration.frontier[0].escalation_fraction == 0.0
        for point in calibration.frontier:
            assert point.relative_cost == pytest.approx(
                (1.0 + point.escalation_fraction * 4.5) / 4.5)
        if calibration.meets_targets:
            assert calibration.recovery >= calibration.target_recovery
            assert calibration.relative_cost <= calibration.max_relative_cost

    def test_calibration_requires_scenes(self, model_pair):
        float_model, quantized_model = model_pair
        with pytest.raises(ValueError):
            calibrate_margin_threshold(
                TaskDetector(quantized_model), TaskDetector(float_model),
                [], get_task("roadside_hazards"))

    def test_store_roundtrip(self, tmp_path, model_pair, scenes):
        float_model, quantized_model = model_pair
        task = get_task("roadside_hazards")
        calibration = calibrate_margin_threshold(
            TaskDetector(quantized_model, score_threshold=0.0),
            TaskDetector(float_model, score_threshold=0.0), scenes, task)
        store = CalibrationStore(ModelRegistry(str(tmp_path)))
        store.save("cascade_roadside", calibration)
        assert store.exists("cascade_roadside")
        assert store.names() == ["cascade_roadside"]
        assert store.load("cascade_roadside") == calibration

    def test_store_missing_raises_keyerror(self, tmp_path):
        store = CalibrationStore(ModelRegistry(str(tmp_path)))
        with pytest.raises(KeyError):
            store.load("ghost")

    def test_store_quarantines_corruption(self, tmp_path, model_pair, scenes):
        float_model, quantized_model = model_pair
        task = get_task("roadside_hazards")
        calibration = calibrate_margin_threshold(
            TaskDetector(quantized_model, score_threshold=0.0),
            TaskDetector(float_model, score_threshold=0.0), scenes, task)
        registry = ModelRegistry(str(tmp_path))
        store = CalibrationStore(registry)
        path = store.save("damaged", calibration)
        document = json.loads(open(path).read())
        document["calibration"]["recovery"] = 999.0  # break the digest
        with open(path, "w") as fh:
            json.dump(document, fh)
        with pytest.raises(CorruptArtifactError):
            store.load("damaged")
        assert not store.exists("damaged")
        hold = tmp_path / "quarantine" / "calibrations"
        assert list(hold.iterdir())
        # registry root scan never confuses calibrations for checkpoints
        assert registry.names() == []

    def test_store_does_not_pollute_registry_statuses(self, tmp_path,
                                                      model_pair, scenes):
        float_model, quantized_model = model_pair
        registry = ModelRegistry(str(tmp_path))
        store = CalibrationStore(registry)
        store.save("cal", calibrate_margin_threshold(
            TaskDetector(quantized_model, score_threshold=0.0),
            TaskDetector(float_model, score_threshold=0.0),
            scenes, get_task("roadside_hazards")))
        assert all(status.ok for status in registry.statuses())


class TestSpecialistRegistry:
    def test_pin_lookup_unpin(self):
        pins = SpecialistRegistry()
        pins.pin("fp", "roadside_hazards")
        assert pins.lookup("fp") == "roadside_hazards"
        assert len(pins) == 1 and pins.pins() == {"fp": "roadside_hazards"}
        assert pins.unpin("fp") and not pins.unpin("fp")
        assert pins.lookup("fp") is None


class TestFingerprintContentDigest:
    def test_equal_version_different_content_distinct(self):
        from repro.kg import Constraint, ConstraintKind, KnowledgeGraph

        def graph(color):
            kg = KnowledgeGraph("t")
            kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "color",
                                         frozenset({color}), 1.0))
            return kg

        red, blue = graph("red"), graph("blue")
        assert red.version == blue.version
        spec = TaskSpec.from_definition(get_task("roadside_hazards"))
        keys = {
            mission_fingerprint(
                spec, selector=ConfigurationSelector({"t": kg}))
            for kg in (red, blue)
        }
        assert len(keys) == 2  # content digest splits coinciding versions


def _pipeline(model_pair, threshold=0.0):
    from repro.core import QuantizedConfiguration

    _, quantized_model = model_pair
    return ITaskPipeline(
        QuantizedConfiguration(name="q", kind="quantized",
                               quantized=quantized_model),
        score_threshold=threshold,
    )


def _specialist(model_pair, task_name):
    float_model, _ = model_pair
    return TaskSpecificConfiguration(
        name=f"spec-{task_name}", kind="task_specific",
        student=float_model, task_name=task_name)


class TestPipelineCascade:
    def test_degrades_to_fast_path_without_specialists(self, model_pair,
                                                       scenes):
        pipeline = _pipeline(model_pair)
        spec = TaskSpec.from_definition(get_task("roadside_hazards"))
        session = pipeline.cascade_session(spec)
        assert not session.has_specialist
        results = session.detect_batch(scenes)
        assert _detections_equal(
            results, pipeline.detect_batch(spec, scenes))
        assert set(session.route_counts()) == {FAST_PATH}

    def test_selected_specialist_is_pinned(self, model_pair, scenes):
        pipeline = _pipeline(model_pair)
        spec = TaskSpec.from_definition(get_task("roadside_hazards"))
        mission_kg = pipeline.build_kg(spec)
        pipeline.register_specialist(
            spec.name, _specialist(model_pair, spec.name), mission_kg)
        session = pipeline.cascade_session(spec)
        assert session.has_specialist and session.router.pinned
        _, decisions = session.route_batch(scenes)
        assert [d.route for d in decisions] == [ESCALATED] * len(scenes)

    def test_pin_specialist_requires_registration(self, model_pair):
        pipeline = _pipeline(model_pair)
        spec = TaskSpec.from_definition(get_task("roadside_hazards"))
        with pytest.raises(KeyError):
            pipeline.pin_specialist(spec, "ghost")

    def test_pin_specialist_forces_escalation(self, model_pair, scenes):
        pipeline = _pipeline(model_pair)
        mission = TaskSpec.from_definition(get_task("roadside_hazards"))
        other = get_task("stop_control")
        # register under the *other* task's graph: selection alone would
        # stay quantized, only the explicit pin routes to the specialist
        pipeline.register_specialist(
            other.name, _specialist(model_pair, other.name),
            pipeline.llm.generate_for_task(other))
        unpinned = pipeline.cascade_session(mission)
        assert not unpinned.router.pinned
        fingerprint = pipeline.pin_specialist(mission, other.name)
        assert pipeline.cascade_pins.lookup(fingerprint) == other.name
        session = pipeline.cascade_session(mission)
        assert session.router.pinned
        _, decisions = session.route_batch(scenes)
        assert [d.route for d in decisions] == [ESCALATED] * len(scenes)

    def test_engine_routes_match_batch_routes(self, model_pair, scenes):
        pipeline = _pipeline(model_pair)
        spec = TaskSpec.from_definition(get_task("roadside_hazards"))
        mission_kg = pipeline.build_kg(spec)
        pipeline.register_specialist(
            spec.name, _specialist(model_pair, spec.name), mission_kg)

        reference_session = pipeline.cascade_session(spec)
        batch_results, batch_decisions = reference_session.route_batch(scenes)

        engine_session = pipeline.cascade_session(spec)
        with engine_session.engine(EngineConfig(max_batch=2,
                                                workers=2)) as engine:
            engine_results = engine.detect_many(scenes)
        engine_decisions = engine_session.drain_decisions()
        assert (sorted(d.route for d in engine_decisions)
                == sorted(d.route for d in batch_decisions))
        # escalated results come from the float specialist, which is
        # only ulp-stable across batch shapes — compare with tolerance
        assert _detections_equal(engine_results, batch_results, atol=1e-5)
        # the engine wired its live queue depth into the router
        assert engine_session.router.queue_depth_fn is not None

    def test_engine_budget_exhaustion_sheds_not_queues(self, model_pair,
                                                       scenes):
        pipeline = _pipeline(model_pair)
        spec = TaskSpec.from_definition(get_task("roadside_hazards"))
        mission_kg = pipeline.build_kg(spec)
        pipeline.register_specialist(
            spec.name, _specialist(model_pair, spec.name), mission_kg)
        config = CascadeConfig(max_escalation_fraction=0.25,
                               escalation_window=4)
        session = pipeline.cascade_session(spec, config=config)
        with session.engine(EngineConfig(max_batch=2, workers=2)) as engine:
            results = engine.detect_many(list(scenes) * 3)
        decisions = session.drain_decisions()
        assert len(decisions) == len(results) == 3 * len(scenes)
        escalated = sum(d.route == ESCALATED for d in decisions)
        # budget holds under concurrency: at most fraction*window grants
        # per window of decisions, so well under half the total here
        assert 0 < escalated <= math.ceil(
            0.25 * 4) * math.ceil(len(decisions) / 4)
        assert sum(d.route == SHED for d in decisions) > 0

    def test_cascade_evaluate_runs(self, model_pair, scenes):
        pipeline = _pipeline(model_pair)
        spec = TaskSpec.from_definition(get_task("roadside_hazards"))
        session = pipeline.cascade_session(spec)
        value = session.evaluate(scenes)
        assert 0.0 <= value <= 1.0


def _detections_equal(left, right, atol=0.0):
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if len(a) != len(b):
            return False
        for x, y in zip(a, b):
            if (x.bbox != y.bbox or abs(x.score - y.score) > atol
                    or x.class_id != y.class_id):
                return False
    return True
