"""Few-shot refinement: omission recovery, hallucination removal."""

import numpy as np
import pytest

from repro.data.ontology import AttributeProfile, sample_profile
from repro.kg import (
    Constraint,
    ConstraintKind,
    KnowledgeGraph,
    evidence_from_profiles,
    refine_with_examples,
)


def profiles_with(n, rng, **fixed):
    return [sample_profile(rng, fixed=fixed) for _ in range(n)]


class TestEvidence:
    def test_counts(self):
        rng = np.random.default_rng(0)
        pos = profiles_with(6, rng, color="red")
        neg = profiles_with(4, rng, color="blue") + [None, None]
        evidence = evidence_from_profiles(pos, neg)
        assert evidence["color"].positive_counts["red"] == 6
        assert evidence["color"].negative_counts["blue"] == 4
        assert evidence["color"].num_negative == 4  # Nones skipped

    def test_separation_perfect(self):
        rng = np.random.default_rng(1)
        pos = profiles_with(5, rng, color="red")
        neg = profiles_with(5, rng, color="green")
        assert evidence_from_profiles(pos, neg)["color"].separation() == 1.0

    def test_separation_zero_when_overlapping(self):
        rng = np.random.default_rng(2)
        pos = profiles_with(5, rng, color="red")
        neg = profiles_with(5, rng, color="red")
        assert evidence_from_profiles(pos, neg)["color"].separation() == 0.0


class TestRefinement:
    def test_recovers_omitted_constraint(self):
        """Text said nothing about color; examples are all red → REQUIRES."""
        kg = KnowledgeGraph("t")
        rng = np.random.default_rng(0)
        pos = profiles_with(8, rng, color="red")
        neg = profiles_with(8, rng, color="blue")
        refined = refine_with_examples(kg, pos, neg)
        constraint = refined.get(ConstraintKind.REQUIRES, "color")
        assert constraint is not None
        assert constraint.values == {"red"}

    def test_widens_hallucinated_constraint(self):
        """Graph requires size=large but positives are medium+large → widen."""
        kg = KnowledgeGraph("t")
        kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "size",
                                     frozenset({"large"}), 1.0))
        rng = np.random.default_rng(1)
        pos = (profiles_with(4, rng, size="medium")
               + profiles_with(4, rng, size="large"))
        refined = refine_with_examples(kg, pos, [])
        assert refined.get(ConstraintKind.REQUIRES, "size").values == {
            "medium", "large"}

    def test_dissolves_fully_contradicted_constraint(self):
        """Positives span the whole vocabulary → constraint dropped."""
        kg = KnowledgeGraph("t")
        kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "size",
                                     frozenset({"large"}), 1.0))
        rng = np.random.default_rng(2)
        pos = (profiles_with(3, rng, size="small")
               + profiles_with(3, rng, size="medium")
               + profiles_with(3, rng, size="large"))
        refined = refine_with_examples(kg, pos, [])
        assert refined.get(ConstraintKind.REQUIRES, "size") is None

    def test_removes_contradicted_exclusion(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(Constraint(ConstraintKind.EXCLUDES, "texture",
                                     frozenset({"striped"}), 1.0))
        rng = np.random.default_rng(3)
        pos = profiles_with(5, rng, texture="striped")
        refined = refine_with_examples(kg, pos, [])
        assert refined.get(ConstraintKind.EXCLUDES, "texture") is None

    def test_keeps_consistent_constraints(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "color",
                                     frozenset({"red"}), 1.0))
        rng = np.random.default_rng(4)
        pos = profiles_with(6, rng, color="red")
        refined = refine_with_examples(kg, pos, [])
        assert refined.get(ConstraintKind.REQUIRES, "color").values == {"red"}

    def test_no_support_returns_copy(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "color",
                                     frozenset({"red"}), 1.0))
        refined = refine_with_examples(kg, [], [])
        assert refined.to_dict() == kg.to_dict()
        assert refined is not kg

    def test_original_graph_untouched(self):
        kg = KnowledgeGraph("t")
        rng = np.random.default_rng(5)
        refine_with_examples(kg, profiles_with(6, rng, color="red"),
                             profiles_with(6, rng, color="blue"))
        assert len(kg) == 0

    def test_broad_support_not_constrained(self):
        """Positives covering most of a vocabulary add no constraint."""
        kg = KnowledgeGraph("t")
        rng = np.random.default_rng(6)
        pos = [sample_profile(rng) for _ in range(40)]  # colors all over
        neg = [sample_profile(rng) for _ in range(40)]
        refined = refine_with_examples(kg, pos, neg)
        assert refined.get(ConstraintKind.REQUIRES, "color") is None

    def test_weak_separation_not_constrained(self):
        """Same value distribution in positives and negatives → no edge."""
        kg = KnowledgeGraph("t")
        rng = np.random.default_rng(7)
        pos = profiles_with(8, rng, color="red")
        neg = profiles_with(8, rng, color="red")
        refined = refine_with_examples(kg, pos, neg)
        assert refined.get(ConstraintKind.REQUIRES, "color") is None
