"""Observability: timers, counters, histograms, spans, telemetry."""

import json
import threading

import numpy as np
import pytest

from repro.obs import (
    Counter,
    Histogram,
    Registry,
    Timer,
    build_telemetry,
    chrome_trace,
    compare_telemetry,
    flatten_tree,
    get_registry,
    load_telemetry,
    span_tree,
    traced,
    write_telemetry,
)


@pytest.fixture()
def registry():
    return Registry("test")


class TestTimer:
    def test_record_accumulates(self):
        timer = Timer("t")
        timer.record(0.5)
        timer.record(1.5)
        assert timer.calls == 2
        assert timer.total_s == pytest.approx(2.0)
        assert timer.mean_s == pytest.approx(1.0)
        assert timer.min_s == pytest.approx(0.5)
        assert timer.max_s == pytest.approx(1.5)
        assert timer.last_s == pytest.approx(1.5)

    def test_mean_of_untouched_timer_is_zero(self):
        assert Timer("t").mean_s == 0.0


class TestRegistry:
    def test_time_context_manager(self, registry):
        with registry.time("stage"):
            pass
        with registry.time("stage"):
            pass
        timer = registry.timer("stage")
        assert timer.calls == 2
        assert timer.total_s >= 0.0

    def test_time_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.time("boom"):
                raise RuntimeError("x")
        assert registry.timer("boom").calls == 1

    def test_counter(self, registry):
        registry.count("events")
        registry.count("events", 4)
        assert registry.counter("events").value == 5

    def test_get_or_create_is_idempotent(self, registry):
        assert registry.timer("a") is registry.timer("a")
        assert registry.counter("b") is registry.counter("b")

    def test_disabled_registry_is_noop(self, registry):
        registry.enabled = False
        with registry.time("stage"):
            pass
        registry.count("events")
        snap = registry.snapshot()
        assert snap["timers"] == {} and snap["counters"] == {}

    def test_traced_decorator(self, registry):
        @registry.traced("my.stage")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert registry.timer("my.stage").calls == 1

    def test_traced_default_name(self, registry):
        @registry.traced()
        def helper():
            return "ok"

        assert helper() == "ok"
        names = list(registry.timers)
        assert len(names) == 1 and "helper" in names[0]

    def test_snapshot_and_report(self, registry):
        with registry.time("alpha"):
            pass
        registry.count("widgets", 3)
        snap = registry.snapshot()
        assert snap["timers"]["alpha"]["calls"] == 1
        assert snap["counters"]["widgets"] == 3
        report = registry.report("title")
        assert "title" in report and "alpha" in report and "widgets" in report

    def test_report_empty(self, registry):
        assert "no timers" in registry.report()

    def test_reset(self, registry):
        with registry.time("stage"):
            pass
        registry.count("events")
        registry.reset()
        snap = registry.snapshot()
        assert snap["timers"] == {} and snap["counters"] == {}


class TestGlobalRegistry:
    def test_singleton(self):
        assert get_registry() is get_registry()

    def test_module_level_traced(self):
        registry = get_registry()
        registry.reset()

        @traced("global.stage")
        def work():
            return 7

        try:
            assert work() == 7
            assert registry.timer("global.stage").calls == 1
        finally:
            registry.reset()


class TestPipelineIntegration:
    """The hot paths actually record into the global registry."""

    def test_detect_records_stages(self, student_vit):
        from repro.data import SceneConfig, SceneGenerator
        from repro.detect import TaskDetector

        registry = get_registry()
        registry.reset()
        try:
            scene = SceneGenerator(SceneConfig(), seed=11).generate()
            TaskDetector(student_vit, score_threshold=0.0).detect(scene)
            timers = registry.snapshot()["timers"]
            for stage in ("detect.total", "detect.window_build",
                          "detect.model_forward", "detect.nms"):
                assert timers[stage]["calls"] >= 1
            assert registry.counter("detect.windows_scored").value == scene.grid ** 2
        finally:
            registry.reset()

    def test_matcher_records_kg_match(self):
        from repro.data.ontology import ATTRIBUTE_FAMILIES
        from repro.kg import Constraint, ConstraintKind, GraphMatcher, KnowledgeGraph

        registry = get_registry()
        registry.reset()
        try:
            kg = KnowledgeGraph("t")
            kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "color",
                                         frozenset({"red"}), 1.0))
            probs = {"color": np.full((2, len(ATTRIBUTE_FAMILIES["color"])),
                                      1.0 / len(ATTRIBUTE_FAMILIES["color"]))}
            GraphMatcher(kg).match_distributions(probs)
            assert registry.timer("kg.match").calls == 1
        finally:
            registry.reset()

    def test_simulator_records_step_loop(self):
        from repro.hw import AcceleratorConfig, Simulator
        from repro.hw.isa import DmaDirection, DmaOp, Program

        registry = get_registry()
        registry.reset()
        try:
            program = Program(
                "p", [DmaOp("load", DmaDirection.LOAD, num_bytes=1024)], batch=1)
            Simulator(AcceleratorConfig.edge_default()).simulate(program)
            timers = registry.snapshot()["timers"]
            assert timers["hw.op_model"]["calls"] == 1
            assert timers["hw.step_loop"]["calls"] == 1
            assert registry.counter("hw.ops_simulated").value == 1
        finally:
            registry.reset()


class TestHistogram:
    """Streaming log-bucket percentiles against the numpy reference."""

    # Geometric-midpoint representatives bound the relative error by
    # sqrt(growth) - 1 ~= 11.8 %; allow a little slack on top.
    TOLERANCE = 0.15

    def test_percentiles_match_numpy_lognormal(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-7.0, sigma=1.5, size=5000)
        hist = Histogram()
        for value in samples:
            hist.record(float(value))
        for q in (50.0, 90.0, 99.0):
            expected = float(np.percentile(samples, q))
            got = hist.percentile(q)
            assert abs(got - expected) / expected < self.TOLERANCE, \
                f"p{q}: {got} vs numpy {expected}"

    def test_percentiles_match_numpy_uniform_ms(self):
        rng = np.random.default_rng(1)
        samples = rng.uniform(1e-4, 1e-2, size=2000)
        hist = Histogram()
        for value in samples:
            hist.record(float(value))
        for q in (10.0, 50.0, 95.0):
            expected = float(np.percentile(samples, q))
            assert abs(hist.percentile(q) - expected) / expected < self.TOLERANCE

    def test_empty_histogram_is_zero(self):
        assert Histogram().percentile(50.0) == 0.0

    def test_single_sample_is_exact(self):
        hist = Histogram()
        hist.record(3.7e-3)
        # Clamping to the observed min/max makes one-sample percentiles exact.
        for q in (0.0, 50.0, 100.0):
            assert hist.percentile(q) == pytest.approx(3.7e-3)

    def test_extremes_clamp_to_observed_range(self):
        hist = Histogram()
        for value in (1e-5, 2e-5, 4e-5):
            hist.record(value)
        assert hist.percentile(0.0) >= 1e-5
        assert hist.percentile(100.0) <= 4e-5

    def test_out_of_range_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101.0)


class TestTimerPercentiles:
    def test_snapshot_reports_percentiles(self, registry):
        timer = registry.timer("t")
        for ms in (1.0, 2.0, 3.0, 100.0):
            timer.record(ms * 1e-3)
        stats = registry.snapshot()["timers"]["t"]
        assert 0 < stats["p50_s"] < stats["p99_s"] <= stats["max_s"]
        assert stats["p90_s"] >= stats["p50_s"]

    def test_untouched_timer_snapshot_is_strict_json(self, registry):
        registry.timer("never.recorded")
        snapshot = registry.snapshot()
        # min_s must not leak Infinity into strict JSON export.
        assert snapshot["timers"]["never.recorded"]["min_s"] == 0.0
        json.dumps(snapshot, allow_nan=False)

    def test_report_includes_percentile_columns(self, registry):
        with registry.time("stage"):
            pass
        report = registry.report()
        assert "p50 ms" in report and "p99 ms" in report


class TestSpans:
    def test_nesting_links_parent_child(self, registry):
        with registry.span("parent") as parent:
            with registry.span("child") as child:
                pass
        spans = {s.name: s for s in registry.spans}
        assert spans["child"].parent_id == spans["parent"].span_id
        assert spans["parent"].parent_id is None
        assert parent.dur_us >= child.dur_us

    def test_time_joins_the_span_tree(self, registry):
        with registry.span("outer"):
            with registry.time("inner"):
                pass
        spans = {s.name: s for s in registry.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_attrs_and_set_attr(self, registry):
        with registry.span("s", task="patrol") as span:
            span.set_attr(windows=64)
        [recorded] = registry.spans
        assert recorded.attrs == {"task": "patrol", "windows": 64}

    def test_span_feeds_timer(self, registry):
        with registry.span("stage"):
            pass
        assert registry.timer("stage").calls == 1

    def test_disabled_registry_records_nothing(self, registry):
        registry.enabled = False
        with registry.span("s", a=1) as span:
            span.set_attr(b=2)  # null span: must not blow up
        assert registry.spans == []
        assert registry.snapshot()["timers"] == {}

    def test_exception_still_completes_span(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in registry.spans] == ["boom"]

    def test_span_buffer_is_bounded(self):
        registry = Registry("bounded", max_spans=5)
        for _ in range(8):
            with registry.span("s"):
                pass
        assert len(registry.spans) == 5
        assert registry.dropped_spans == 3
        # Aggregate stats still see every call.
        assert registry.timer("s").calls == 8

    def test_reset_clears_spans(self, registry):
        with registry.span("s"):
            pass
        registry.reset()
        assert registry.spans == []

    def test_span_tree_structure(self, registry):
        with registry.span("root"):
            with registry.span("a"):
                with registry.span("leaf"):
                    pass
            with registry.span("b"):
                pass
        [root] = registry.span_tree()
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["a", "b"]
        assert [c["name"] for c in root["children"][0]["children"]] == ["leaf"]
        flat = flatten_tree([root])
        assert [n["name"] for n in flat] == ["root", "a", "leaf", "b"]

    def test_traced_disabled_is_passthrough(self, registry):
        registry.enabled = False

        @registry.traced("stage")
        def work():
            return 42

        assert work() == 42
        assert registry.snapshot()["timers"] == {}


class TestConcurrency:
    """Concurrent span()/time()/count() from many threads stays exact."""

    THREADS = 8
    ITERATIONS = 200

    def test_totals_equal_sum_of_per_thread_work(self):
        registry = Registry("mt", max_spans=10 * self.THREADS * self.ITERATIONS)
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()
            for _ in range(self.ITERATIONS):
                with registry.span("outer"):
                    with registry.time("inner"):
                        registry.count("events")

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = self.THREADS * self.ITERATIONS
        assert registry.timer("outer").calls == expected
        assert registry.timer("inner").calls == expected
        assert registry.counter("events").value == expected
        assert registry.timer("outer").histogram.count == expected

    def test_no_torn_parent_child_links(self):
        registry = Registry("mt", max_spans=10 * self.THREADS * self.ITERATIONS)
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()
            for _ in range(self.ITERATIONS):
                with registry.span("outer"):
                    with registry.span("inner"):
                        pass

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_id = {s.span_id: s for s in registry.spans}
        inner = [s for s in registry.spans if s.name == "inner"]
        assert len(inner) == self.THREADS * self.ITERATIONS
        for span in inner:
            parent = by_id[span.parent_id]
            # A parent from another thread would be a torn link.
            assert parent.tid == span.tid
            assert parent.name == "outer"
        outer = [s for s in registry.spans if s.name == "outer"]
        assert all(s.parent_id is None for s in outer)


class TestChromeTrace:
    def test_export_shape(self, registry):
        with registry.span("root", task="patrol"):
            with registry.span("leaf"):
                pass
        trace = chrome_trace(registry.spans)
        complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in complete} == {"root", "leaf"}
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert "pid" in event and "tid" in event
        # args carry span attributes into the Perfetto detail pane
        [root] = [e for e in complete if e["name"] == "root"]
        assert root["args"] == {"task": "patrol"}
        # strict JSON round-trip (what `repro obs trace` writes)
        json.dumps(trace, allow_nan=False)

    def test_accepts_dict_spans(self, registry):
        with registry.span("s"):
            pass
        as_dicts = [s.as_dict() for s in registry.spans]
        trace = chrome_trace(as_dicts)
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])
        assert span_tree(as_dicts)[0]["name"] == "s"


class TestTelemetry:
    def _sample_doc(self, registry):
        with registry.span("detect.total"):
            with registry.span("detect.nms"):
                pass
        registry.count("windows", 64)
        return build_telemetry(
            "unit_test", registry=registry,
            rows=[{"metric": np.float64(1.5), "count": np.int64(3),
                   "vector": np.arange(2)}],
        )

    def test_write_load_roundtrip(self, registry, tmp_path):
        doc = self._sample_doc(registry)
        path = tmp_path / "BENCH_unit_test.json"
        write_telemetry(str(path), doc)
        loaded = load_telemetry(str(path))
        assert loaded["schema_version"] == 1
        assert loaded["bench"] == "unit_test"
        assert loaded["obs"]["timers"]["detect.total"]["calls"] == 1
        assert loaded["obs"]["counters"]["windows"] == 64
        assert loaded["manifest"]["python"]
        # numpy rows were coerced to plain JSON types
        assert loaded["rows"] == [{"metric": 1.5, "count": 3, "vector": [0, 1]}]

    def test_schema_version_gate(self, registry, tmp_path):
        doc = self._sample_doc(registry)
        doc["schema_version"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema_version"):
            load_telemetry(str(path))

    def test_compare_self_is_clean(self, registry):
        doc = self._sample_doc(registry)
        comparison = compare_telemetry(doc, doc, max_regress=0.15)
        assert comparison.ok
        assert comparison.rows  # it actually compared stages

    def test_compare_flags_2x_slowdown(self, registry):
        doc = self._sample_doc(registry)
        slow = json.loads(json.dumps(doc))
        for stats in slow["obs"]["timers"].values():
            for key in ("total_s", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"):
                stats[key] *= 2.0
        comparison = compare_telemetry(doc, slow, max_regress=0.15)
        assert not comparison.ok
        assert {row.stage for row in comparison.regressions} == \
            {"detect.total", "detect.nms"}
        assert all(row.change_pct == pytest.approx(100.0)
                   for row in comparison.regressions)
        # ... and the improvement direction never trips the gate
        assert compare_telemetry(slow, doc, max_regress=0.15).ok

    def test_compare_share_metric_ignores_uniform_slowdown(self, registry):
        doc = self._sample_doc(registry)
        slow = json.loads(json.dumps(doc))
        for stats in slow["obs"]["timers"].values():
            for key in ("total_s", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"):
                stats[key] *= 3.0
        # A uniformly slower machine changes no stage's share of the total.
        comparison = compare_telemetry(doc, slow, max_regress=0.15,
                                       metric="share")
        assert comparison.ok

    def test_compare_skips_one_sided_stages(self, registry):
        doc = self._sample_doc(registry)
        other = json.loads(json.dumps(doc))
        other["obs"]["timers"]["brand.new"] = \
            dict(other["obs"]["timers"]["detect.total"])
        comparison = compare_telemetry(doc, other)
        assert "brand.new" in comparison.skipped


class TestObsCli:
    @pytest.fixture()
    def bench_file(self, registry, tmp_path):
        with registry.span("detect.total", task="patrol"):
            with registry.span("detect.nms"):
                pass
        doc = build_telemetry("cli_test", registry=registry,
                              rows=[{"speedup": 4.2}])
        path = tmp_path / "BENCH_cli_test.json"
        write_telemetry(str(path), doc)
        return str(path)

    def test_report(self, bench_file, capsys):
        from repro.cli import main

        assert main(["obs", "report", bench_file]) == 0
        out = capsys.readouterr().out
        assert "cli_test" in out and "detect.total" in out and "p50" in out

    def test_trace_loads_as_chrome_trace(self, bench_file, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "trace.json"
        assert main(["obs", "trace", bench_file, "--out", str(out_path)]) == 0
        trace = json.loads(out_path.read_text())
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_compare_exit_codes(self, bench_file, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "compare", bench_file, bench_file,
                     "--max-regress", "15%"]) == 0
        slow_doc = json.loads(open(bench_file).read())
        for stats in slow_doc["obs"]["timers"].values():
            for key in ("total_s", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"):
                stats[key] *= 2.0
        slow_path = tmp_path / "BENCH_slow.json"
        slow_path.write_text(json.dumps(slow_doc))
        assert main(["obs", "compare", bench_file, str(slow_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out


class TestDisabledOverhead:
    """enabled=False must keep the probes off the hot path entirely."""

    def test_disabled_span_avoids_clock_and_buffer(self, registry):
        registry.enabled = False
        for _ in range(100):
            with registry.span("s"):
                pass
            registry.count("c", 2)
            registry.observe("d", 5)
        assert registry.spans == []
        assert registry.snapshot() == {
            "timers": {}, "counters": {}, "distributions": {}}
