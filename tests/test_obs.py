"""Observability registry: timers, counters, tracing, reporting."""

import numpy as np
import pytest

from repro.obs import Counter, Registry, Timer, get_registry, traced


@pytest.fixture()
def registry():
    return Registry("test")


class TestTimer:
    def test_record_accumulates(self):
        timer = Timer("t")
        timer.record(0.5)
        timer.record(1.5)
        assert timer.calls == 2
        assert timer.total_s == pytest.approx(2.0)
        assert timer.mean_s == pytest.approx(1.0)
        assert timer.min_s == pytest.approx(0.5)
        assert timer.max_s == pytest.approx(1.5)
        assert timer.last_s == pytest.approx(1.5)

    def test_mean_of_untouched_timer_is_zero(self):
        assert Timer("t").mean_s == 0.0


class TestRegistry:
    def test_time_context_manager(self, registry):
        with registry.time("stage"):
            pass
        with registry.time("stage"):
            pass
        timer = registry.timer("stage")
        assert timer.calls == 2
        assert timer.total_s >= 0.0

    def test_time_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.time("boom"):
                raise RuntimeError("x")
        assert registry.timer("boom").calls == 1

    def test_counter(self, registry):
        registry.count("events")
        registry.count("events", 4)
        assert registry.counter("events").value == 5

    def test_get_or_create_is_idempotent(self, registry):
        assert registry.timer("a") is registry.timer("a")
        assert registry.counter("b") is registry.counter("b")

    def test_disabled_registry_is_noop(self, registry):
        registry.enabled = False
        with registry.time("stage"):
            pass
        registry.count("events")
        snap = registry.snapshot()
        assert snap["timers"] == {} and snap["counters"] == {}

    def test_traced_decorator(self, registry):
        @registry.traced("my.stage")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert registry.timer("my.stage").calls == 1

    def test_traced_default_name(self, registry):
        @registry.traced()
        def helper():
            return "ok"

        assert helper() == "ok"
        names = list(registry.timers)
        assert len(names) == 1 and "helper" in names[0]

    def test_snapshot_and_report(self, registry):
        with registry.time("alpha"):
            pass
        registry.count("widgets", 3)
        snap = registry.snapshot()
        assert snap["timers"]["alpha"]["calls"] == 1
        assert snap["counters"]["widgets"] == 3
        report = registry.report("title")
        assert "title" in report and "alpha" in report and "widgets" in report

    def test_report_empty(self, registry):
        assert "no timers" in registry.report()

    def test_reset(self, registry):
        with registry.time("stage"):
            pass
        registry.count("events")
        registry.reset()
        snap = registry.snapshot()
        assert snap["timers"] == {} and snap["counters"] == {}


class TestGlobalRegistry:
    def test_singleton(self):
        assert get_registry() is get_registry()

    def test_module_level_traced(self):
        registry = get_registry()
        registry.reset()

        @traced("global.stage")
        def work():
            return 7

        try:
            assert work() == 7
            assert registry.timer("global.stage").calls == 1
        finally:
            registry.reset()


class TestPipelineIntegration:
    """The hot paths actually record into the global registry."""

    def test_detect_records_stages(self, student_vit):
        from repro.data import SceneConfig, SceneGenerator
        from repro.detect import TaskDetector

        registry = get_registry()
        registry.reset()
        try:
            scene = SceneGenerator(SceneConfig(), seed=11).generate()
            TaskDetector(student_vit, score_threshold=0.0).detect(scene)
            timers = registry.snapshot()["timers"]
            for stage in ("detect.total", "detect.window_build",
                          "detect.model_forward", "detect.nms"):
                assert timers[stage]["calls"] >= 1
            assert registry.counter("detect.windows_scored").value == scene.grid ** 2
        finally:
            registry.reset()

    def test_matcher_records_kg_match(self):
        from repro.data.ontology import ATTRIBUTE_FAMILIES
        from repro.kg import Constraint, ConstraintKind, GraphMatcher, KnowledgeGraph

        registry = get_registry()
        registry.reset()
        try:
            kg = KnowledgeGraph("t")
            kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "color",
                                         frozenset({"red"}), 1.0))
            probs = {"color": np.full((2, len(ATTRIBUTE_FAMILIES["color"])),
                                      1.0 / len(ATTRIBUTE_FAMILIES["color"]))}
            GraphMatcher(kg).match_distributions(probs)
            assert registry.timer("kg.match").calls == 1
        finally:
            registry.reset()

    def test_simulator_records_step_loop(self):
        from repro.hw import AcceleratorConfig, Simulator
        from repro.hw.isa import DmaDirection, DmaOp, Program

        registry = get_registry()
        registry.reset()
        try:
            program = Program(
                "p", [DmaOp("load", DmaDirection.LOAD, num_bytes=1024)], batch=1)
            Simulator(AcceleratorConfig.edge_default()).simulate(program)
            timers = registry.snapshot()["timers"]
            assert timers["hw.op_model"]["calls"] == 1
            assert timers["hw.step_loop"]["calls"] == 1
            assert registry.counter("hw.ops_simulated").value == 1
        finally:
            registry.reset()
