"""Graph embeddings and task similarity."""

import numpy as np
import pytest

from repro.data import TASK_LIBRARY, get_task
from repro.kg import (
    Constraint,
    ConstraintKind,
    KnowledgeGraph,
    SimulatedLLM,
    graph_feature_vector,
    spectral_signature,
    task_similarity,
)
from repro.kg.embedding import FEATURE_DIM


def kg_with(*constraints):
    kg = KnowledgeGraph("t")
    for kind, family, values in constraints:
        kg.add_constraint(Constraint(kind, family, frozenset(values), 1.0))
    return kg


class TestFeatureVector:
    def test_dimension(self):
        assert graph_feature_vector(KnowledgeGraph("t")).shape == (FEATURE_DIM,)

    def test_empty_graph_zero_vector(self):
        assert not graph_feature_vector(KnowledgeGraph("t")).any()

    def test_requires_positive_excludes_negative(self):
        kg = kg_with(
            (ConstraintKind.REQUIRES, "color", {"red"}),
            (ConstraintKind.EXCLUDES, "size", {"small"}),
        )
        vec = graph_feature_vector(kg)
        assert vec.max() > 0 and vec.min() < 0

    def test_narrow_constraint_stronger(self):
        narrow = graph_feature_vector(
            kg_with((ConstraintKind.REQUIRES, "color", {"red"})))
        broad = graph_feature_vector(
            kg_with((ConstraintKind.REQUIRES, "color", {"red", "blue", "green"})))
        assert narrow.max() > broad.max()


class TestSimilarity:
    def test_self_similarity_one(self):
        kg = kg_with((ConstraintKind.REQUIRES, "color", {"red"}))
        assert task_similarity(kg, kg) == pytest.approx(1.0)

    def test_disjoint_graphs_orthogonal(self):
        a = kg_with((ConstraintKind.REQUIRES, "color", {"red"}))
        b = kg_with((ConstraintKind.REQUIRES, "shape", {"ring"}))
        assert task_similarity(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_both_empty_identical(self):
        assert task_similarity(KnowledgeGraph("a"), KnowledgeGraph("b")) == 1.0

    def test_one_empty_zero(self):
        kg = kg_with((ConstraintKind.REQUIRES, "color", {"red"}))
        assert task_similarity(kg, KnowledgeGraph("e")) == 0.0

    def test_opposite_constraints_negative(self):
        a = kg_with((ConstraintKind.REQUIRES, "color", {"red"}))
        b = kg_with((ConstraintKind.EXCLUDES, "color", {"red"}))
        assert task_similarity(a, b) < 0

    def test_library_tasks_self_identify(self):
        """Each task's graph is most similar to itself among the library."""
        llm = SimulatedLLM()
        graphs = {name: llm.generate_for_task(get_task(name))
                  for name in TASK_LIBRARY}
        for name, kg in graphs.items():
            sims = {other: task_similarity(kg, other_kg)
                    for other, other_kg in graphs.items()}
            assert max(sims, key=sims.get) == name


class TestSpectral:
    def test_signature_shape_and_padding(self):
        kg = kg_with((ConstraintKind.REQUIRES, "color", {"red"}))
        sig = spectral_signature(kg, k=6)
        assert sig.shape == (6,)
        assert (sig >= -1e-9).all()  # Laplacian eigenvalues are non-negative

    def test_bigger_graph_bigger_spectrum(self):
        small = kg_with((ConstraintKind.REQUIRES, "color", {"red"}))
        big = kg_with(
            (ConstraintKind.REQUIRES, "color", {"red", "blue", "green"}),
            (ConstraintKind.REQUIRES, "shape", {"ring", "cross"}),
        )
        assert spectral_signature(big).sum() > spectral_signature(small).sum()
