"""Quantization-aware training: wrapping, calibration, export, recovery."""

import numpy as np
import pytest

from repro.data import attribute_head_spec, build_window_dataset
from repro.data.datasets import num_classes
from repro.distill import ModelTrainer, TrainingConfig, evaluate_model
from repro.nn import Linear, VisionTransformer, ViTConfig
from repro.quant import (
    FakeQuantize,
    MinMaxObserver,
    QATConfig,
    QATLinear,
    QATVisionTransformer,
    QuantSpec,
    quantize_vit,
    train_qat,
)
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def dataset():
    return build_window_dataset(seed=51, num_category_objects=96,
                                num_distractors=24, num_background=24)


@pytest.fixture(scope="module")
def trained(dataset):
    model = VisionTransformer(
        ViTConfig.student(num_classes(), attribute_head_spec()),
        rng=np.random.default_rng(9))
    ModelTrainer(model, TrainingConfig(epochs=8, batch_size=48,
                                       learning_rate=2e-3, seed=0)).fit(dataset)
    return model


class TestQATLinear:
    def test_forward_close_to_float(self):
        rng = np.random.default_rng(0)
        inner = Linear(16, 8, rng=rng)
        fq = FakeQuantize(MinMaxObserver(QuantSpec(bits=8, symmetric=False)))
        layer = QATLinear(inner, QuantSpec(bits=8, symmetric=True,
                                           per_channel=True, axis=0), fq)
        x = Tensor(rng.standard_normal((4, 16)).astype(np.float32))
        # calibration pass (pass-through on activations)
        out_cal = layer(x)
        fq.freeze()
        out_q = layer(x)
        ref = x.data @ inner.weight.data.T + inner.bias.data
        assert np.abs(out_cal.data - ref).max() < 0.05
        assert np.abs(out_q.data - ref).max() < 0.1

    def test_gradients_flow_to_inner(self):
        rng = np.random.default_rng(1)
        inner = Linear(8, 4, rng=rng)
        fq = FakeQuantize(MinMaxObserver(QuantSpec(bits=8, symmetric=False)))
        layer = QATLinear(inner, QuantSpec(bits=8, symmetric=True), fq)
        x = Tensor(rng.standard_normal((2, 8)).astype(np.float32))
        layer(x)  # calibrate
        fq.freeze()
        layer(x).sum().backward()
        assert inner.weight.grad is not None
        assert inner.bias.grad is not None


class TestQATModel:
    def test_wrap_and_restore(self, trained, dataset):
        x = dataset.images[:4]
        with no_grad():
            before = trained(Tensor(x))["class_logits"].data.copy()
        qat = QATVisionTransformer(trained)
        qat.calibrate(dataset.images, batches=2)
        exported = qat.export()
        # export must restore plain Linear layers
        assert isinstance(trained.patch_embed.proj, Linear)
        with no_grad():
            after = trained(Tensor(x))["class_logits"].data
        np.testing.assert_allclose(before, after, atol=1e-5)
        out = exported(x)
        assert out["class_logits"].shape == before.shape

    def test_export_before_calibrate_raises(self, trained):
        qat = QATVisionTransformer(trained)
        with pytest.raises(RuntimeError):
            qat.export()
        # leave the model restored for the other tests: calibrate + export
        rng = np.random.default_rng(0)
        qat.calibrate(rng.random((8, 3, 32, 32)).astype(np.float32), batches=1)
        qat.export()
        assert isinstance(trained.patch_embed.proj, Linear)

    def test_qat_recovers_low_bit_accuracy(self, trained, dataset):
        """At 3-bit weights, QAT fine-tuning should beat straight PTQ."""
        val = build_window_dataset(seed=52, num_category_objects=96,
                                   num_distractors=24, num_background=24)
        spec = QuantSpec(bits=3, symmetric=True, per_channel=True, axis=0)
        ptq = quantize_vit(trained, dataset.images[:96], weight_spec=spec)
        ptq_acc = (ptq.classify(val.images) == val.class_labels).mean()

        # fine-tune a copy so `trained` stays pristine for other tests
        copy = VisionTransformer(trained.config, rng=np.random.default_rng(0))
        copy.load_state_dict(trained.state_dict())
        qat_model = train_qat(copy, dataset, weight_spec=spec,
                              config=QATConfig(epochs=3, seed=0))
        qat_acc = (qat_model.classify(val.images) == val.class_labels).mean()
        assert qat_acc >= ptq_acc - 0.02  # typically strictly better
