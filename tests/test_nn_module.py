"""Module system: registration, traversal, modes, state dicts, buffers."""

import numpy as np
import pytest

from repro.nn import Linear, LayerNorm, Module, Parameter, Sequential
from repro.nn import save_state_dict, load_state_dict, state_dict_equal
from repro.tensor import Tensor


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2)))
        self.register_buffer("running", np.zeros(3))

    def forward(self, x):
        return x @ self.w


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.left = Leaf()
        self.right = Leaf()
        self.top = Parameter(np.zeros(4))

    def forward(self, x):
        return self.left(x) + self.right(x)


class TestRegistration:
    def test_parameters_discovered(self):
        tree = Tree()
        names = {name for name, _ in tree.named_parameters()}
        assert names == {"top", "left.w", "right.w"}

    def test_num_parameters(self):
        assert Tree().num_parameters() == 4 + 4 + 4

    def test_modules_traversal(self):
        tree = Tree()
        kinds = [type(m).__name__ for _, m in tree.named_modules()]
        assert kinds == ["Tree", "Leaf", "Leaf"]

    def test_children(self):
        assert len(list(Tree().children())) == 2

    def test_buffers_discovered(self):
        names = {name for name, _ in Tree().named_buffers()}
        assert names == {"left.running", "right.running"}

    def test_buffer_attribute_access(self):
        leaf = Leaf()
        np.testing.assert_array_equal(leaf.running, np.zeros(3))

    def test_set_buffer_updates(self):
        leaf = Leaf()
        leaf.set_buffer("running", np.arange(3))
        np.testing.assert_array_equal(leaf.running, np.arange(3))

    def test_set_unknown_buffer_raises(self):
        with pytest.raises(KeyError):
            Leaf().set_buffer("nope", np.zeros(1))


class TestModes:
    def test_train_eval_propagates(self):
        tree = Tree()
        tree.eval()
        assert not tree.left.training and not tree.right.training
        tree.train()
        assert tree.left.training

    def test_zero_grad(self):
        tree = Tree()
        for p in tree.parameters():
            p.grad = np.ones_like(p.data)
        tree.zero_grad()
        assert all(p.grad is None for p in tree.parameters())


class TestStateDict:
    def test_roundtrip_identity(self):
        a, b = Tree(), Tree()
        for p in a.parameters():
            p.data = p.data + 1.0
        b.load_state_dict(a.state_dict())
        assert state_dict_equal(a.state_dict(), b.state_dict())

    def test_buffer_roundtrip(self):
        a, b = Leaf(), Leaf()
        a.set_buffer("running", np.array([1.0, 2.0, 3.0]))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.running, [1.0, 2.0, 3.0])

    def test_missing_key_strict(self):
        tree = Tree()
        state = tree.state_dict()
        del state["top"]
        with pytest.raises(KeyError):
            tree.load_state_dict(state)

    def test_unexpected_key_strict(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            tree.load_state_dict(state)

    def test_shape_mismatch(self):
        tree = Tree()
        state = tree.state_dict()
        state["top"] = np.zeros(9)
        with pytest.raises(ValueError):
            tree.load_state_dict(state)

    def test_non_strict_tolerates_extra(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1)
        tree.load_state_dict(state, strict=False)

    def test_file_roundtrip(self, tmp_path):
        tree = Tree()
        path = str(tmp_path / "ckpt.npz")
        save_state_dict(tree.state_dict(), path)
        loaded = load_state_dict(path)
        assert state_dict_equal(tree.state_dict(), loaded)

    def test_state_dict_is_copy(self):
        tree = Tree()
        state = tree.state_dict()
        state["top"][:] = 99.0
        assert tree.top.data.max() == 0.0

    def test_state_dict_equal_detects_diff(self):
        a, b = Tree().state_dict(), Tree().state_dict()
        b["top"] = b["top"] + 1e-3
        assert not state_dict_equal(a, b)
        assert state_dict_equal(a, b, atol=1e-2)


class TestSequential:
    def test_order_and_len(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 8, rng=rng), LayerNorm(8), Linear(8, 2, rng=rng))
        assert len(seq) == 3
        out = seq(Tensor(np.zeros((1, 4), np.float32)))
        assert out.shape == (1, 2)

    def test_getitem(self):
        seq = Sequential(LayerNorm(4), LayerNorm(4))
        assert isinstance(seq[1], LayerNorm)

    def test_iteration(self):
        seq = Sequential(LayerNorm(4), LayerNorm(4))
        assert len(list(seq)) == 2
