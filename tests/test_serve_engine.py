"""Serving layer: session cache, batch-first dataflow, detection engine.

Covers the three layers of the serving stack:

* :class:`repro.serve.SessionCache` / ``ITaskPipeline.session`` — LRU
  semantics, fingerprint sensitivity, explicit invalidation, and the
  regression guarantee that repeated ``detect()`` calls prepare the
  mission (LLM extraction included) exactly once;
* ``TaskDetector.detect_batch`` / ``GraphMatcher.match_batch`` /
  ``StreamingDetector.update_many`` — fused multi-scene execution must
  reproduce the sequential per-scene paths;
* :class:`repro.serve.DetectionEngine` — queued micro-batching with
  deterministic ordering, graceful shutdown, error isolation, and
  telemetry.
"""

import numpy as np
import pytest

from repro.core import ITaskPipeline, TaskSpec
from repro.core.configurations import (
    QuantizedConfiguration,
    TaskSpecificConfiguration,
)
from repro.data import (
    SceneConfig,
    SceneGenerator,
    attribute_head_spec,
    get_task,
)
from repro.data.datasets import num_classes
from repro.detect import TaskDetector
from repro.kg import GraphMatcher, SimulatedLLM
from repro.kg.schema import Constraint, ConstraintKind
from repro.nn import VisionTransformer, ViTConfig
from repro.obs import get_registry
from repro.serve import (
    DetectionEngine,
    EngineClosed,
    EngineConfig,
    MissionSession,
    SessionCache,
    mission_fingerprint,
)

TASK = "roadside_hazards"


class CountingLLM(SimulatedLLM):
    """SimulatedLLM that counts ``generate`` calls."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.generate_calls = 0

    def generate(self, *args, **kwargs):
        self.generate_calls += 1
        return super().generate(*args, **kwargs)


def build_pipeline(llm=None) -> ITaskPipeline:
    """Pipeline with one float student specialist for ``TASK``."""
    task = get_task(TASK)
    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    specialist = TaskSpecificConfiguration(
        name=f"specialist:{task.name}", kind="task_specific",
        student=model, task_name=task.name)
    placeholder = QuantizedConfiguration(
        name="quantized:placeholder", kind="quantized", quantized=None)
    pipeline = ITaskPipeline(placeholder,
                             specialists={task.name: specialist},
                             llm=llm)
    pipeline.selector.register_specialist(
        task.name, pipeline.llm.generate_for_task(task))
    return pipeline


@pytest.fixture(scope="module")
def spec():
    return TaskSpec.from_definition(get_task(TASK))


@pytest.fixture(scope="module")
def scenes():
    return list(SceneGenerator(SceneConfig(grid=3), seed=5).generate_batch(6))


@pytest.fixture()
def pipeline():
    return build_pipeline()


# ----------------------------------------------------------------------
# Session cache
# ----------------------------------------------------------------------
class TestSessionCache:
    def test_detect_prepares_exactly_once(self, spec, scenes):
        """Regression: repeated ``pipeline.detect`` must not re-run the
        LLM/refinement/selection chain (the seed rebuilt it per call)."""
        llm = CountingLLM()
        pipeline = build_pipeline(llm=llm)
        calls_after_setup = llm.generate_calls
        for scene in scenes[:3]:
            pipeline.detect(spec, scene)
        assert llm.generate_calls == calls_after_setup + 1

    def test_session_object_is_reused(self, pipeline, spec):
        assert pipeline.session(spec) is pipeline.session(spec)

    def test_invalidate_sessions_forces_reprepare(self, spec, scenes):
        llm = CountingLLM()
        pipeline = build_pipeline(llm=llm)
        pipeline.detect(spec, scenes[0])
        baseline = llm.generate_calls
        assert pipeline.invalidate_sessions() == 1
        pipeline.detect(spec, scenes[0])
        assert llm.generate_calls == baseline + 1

    def test_register_specialist_invalidates(self, pipeline, spec):
        session = pipeline.session(spec)
        task = get_task(TASK)
        pipeline.register_specialist(
            task.name, pipeline.specialists[task.name],
            pipeline.llm.generate_for_task(task))
        assert pipeline.session(spec) is not session

    def test_fingerprint_sensitivity(self, pipeline, spec):
        base = pipeline._session_key(spec, False, None)
        assert pipeline._session_key(spec, True, None) != base
        assert pipeline._session_key(spec, False, 5.0) != base
        from repro.data import sample_profile

        richer = TaskSpec.from_definition(
            get_task(TASK),
            support_positives=[sample_profile(np.random.default_rng(0))])
        assert pipeline._session_key(richer, False, None) != base

    def test_fingerprint_sees_graph_edits(self, spec):
        """Editing a registered specialist graph in place must change the
        key (the fingerprint hashes each graph's version)."""
        pipeline = build_pipeline()
        before = pipeline._session_key(spec, False, None)
        kg = pipeline.selector.specialist_graphs[TASK]
        kg.add_constraint(Constraint(
            kind=ConstraintKind.PREFERS, family="color",
            values=frozenset({"red"}), weight=0.5))
        assert pipeline._session_key(spec, False, None) != before

    def test_stale_flag_after_graph_edit(self, pipeline, spec):
        session = pipeline.session(spec)
        assert not session.stale
        session.kg.add_constraint(Constraint(
            kind=ConstraintKind.PREFERS, family="size",
            values=frozenset({"large"}), weight=0.25))
        assert session.stale

    def test_lru_eviction_and_counters(self):
        registry = get_registry()
        registry.reset()
        cache = SessionCache(capacity=2)
        sessions = {}

        def factory(key):
            def build():
                sessions[key] = object()
                result = type("R", (), {})()
                result.kg = type("K", (), {"version": 0})()
                return result
            return build

        cache.get_or_create("a", factory("a"))
        cache.get_or_create("b", factory("b"))
        cache.get_or_create("a", factory("a"))   # hit; refreshes LRU order
        cache.get_or_create("c", factory("c"))   # evicts "b"
        assert "b" not in cache and "a" in cache and "c" in cache
        counters = {name: c.value for name, c in registry.counters.items()}
        assert counters["session.cache.hit"] == 1
        assert counters["session.cache.miss"] == 3
        assert counters["session.cache.evict"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SessionCache(capacity=0)

    def test_fingerprint_is_stable(self, spec):
        assert mission_fingerprint(spec) == mission_fingerprint(spec)


# ----------------------------------------------------------------------
# Batch-first dataflow
# ----------------------------------------------------------------------
class TestDetectBatch:
    def _assert_batch_matches_sequential(self, detector, scenes, exact):
        sequential = [detector.detect(scene) for scene in scenes]
        batched = detector.detect_batch(scenes)
        assert len(batched) == len(scenes)
        for left, right in zip(sequential, batched):
            assert [d.bbox for d in left] == [d.bbox for d in right]
            assert [d.class_id for d in left] == [d.class_id for d in right]
            if exact:
                assert [d.score for d in left] == [d.score for d in right]
            else:
                np.testing.assert_allclose([d.score for d in left],
                                           [d.score for d in right],
                                           rtol=1e-5)

    def test_float_batch_matches_sequential(self, pipeline, spec, scenes):
        session = pipeline.session(spec)
        self._assert_batch_matches_sequential(session.detector, scenes,
                                              exact=False)

    def test_quantized_batch_matches_sequential_bitwise(self, student_vit,
                                                        scenes):
        """The integer forward is batch-invariant, so fusing scenes must
        be bit-identical to per-scene detection."""
        from repro.quant import quantize_vit

        rng = np.random.default_rng(0)
        calibration = rng.random((16, 3, 32, 32)).astype(np.float32)
        quantized = quantize_vit(student_vit, calibration)
        kg = SimulatedLLM().generate_for_task(get_task(TASK))
        detector = TaskDetector(quantized, matcher=GraphMatcher(kg),
                                score_threshold=0.0)
        self._assert_batch_matches_sequential(detector, scenes[:3],
                                              exact=True)

    @pytest.mark.parametrize("weight_bits,act_bits", [(4, 8), (16, 16)])
    def test_quantized_batch_bitwise_other_widths(self, student_vit, scenes,
                                                  weight_bits, act_bits):
        """Batch invariance must hold on both exact-GEMM dtypes: w4a8
        runs the float32 kernels, w16a16 the float64 ones."""
        from repro.quant import QuantSpec, quantize_vit

        rng = np.random.default_rng(1)
        calibration = rng.random((16, 3, 32, 32)).astype(np.float32)
        quantized = quantize_vit(
            student_vit, calibration,
            weight_spec=QuantSpec(bits=weight_bits, symmetric=True,
                                  per_channel=True, axis=0),
            act_spec=QuantSpec(bits=act_bits, symmetric=False))
        kg = SimulatedLLM().generate_for_task(get_task(TASK))
        detector = TaskDetector(quantized, matcher=GraphMatcher(kg),
                                score_threshold=0.0)
        self._assert_batch_matches_sequential(detector, scenes[:2],
                                              exact=True)

    def test_quantized_detect_bitwise_equals_reference(self, student_vit,
                                                       scenes, monkeypatch):
        """The whole detect path on BLAS kernels must reproduce the int64
        reference path bit for bit (REPRO_QUANT_EXACT=1)."""
        from repro.quant import quantize_vit

        rng = np.random.default_rng(2)
        calibration = rng.random((16, 3, 32, 32)).astype(np.float32)
        quantized = quantize_vit(student_vit, calibration)
        kg = SimulatedLLM().generate_for_task(get_task(TASK))
        detector = TaskDetector(quantized, matcher=GraphMatcher(kg),
                                score_threshold=0.0)
        fast = detector.detect_batch(scenes[:2])
        monkeypatch.setenv("REPRO_QUANT_EXACT", "1")
        reference = detector.detect_batch(scenes[:2])
        for left, right in zip(fast, reference):
            assert [d.bbox for d in left] == [d.bbox for d in right]
            assert [d.score for d in left] == [d.score for d in right]
            assert [d.class_id for d in left] == [d.class_id for d in right]

    def test_empty_batch(self, pipeline, spec):
        assert pipeline.session(spec).detect_batch([]) == []

    def test_match_batch_equals_per_scene(self):
        kg = SimulatedLLM().generate_for_task(get_task(TASK))
        matcher = GraphMatcher(kg)
        rng = np.random.default_rng(3)
        counts = [4, 0, 7]
        total = sum(counts)
        probs = {}
        for family, cardinality in attribute_head_spec():
            raw = rng.random((total, cardinality))
            probs[family] = raw / raw.sum(axis=-1, keepdims=True)
        merged = matcher.match_batch(probs, counts)
        start = 0
        for count, result in zip(counts, merged):
            stop = start + count
            single = matcher.match_distributions(
                {f: p[start:stop] for f, p in probs.items()})
            np.testing.assert_array_equal(result.score, single.score)
            start = stop

    def test_match_batch_count_mismatch(self):
        kg = SimulatedLLM().generate_for_task(get_task(TASK))
        matcher = GraphMatcher(kg)
        with pytest.raises(ValueError):
            matcher.match_batch({"color": np.ones((3, 5)) / 5.0}, [1, 1])

    def test_update_many_equals_repeated_update(self, pipeline, spec, scenes):
        from repro.stream import StreamingDetector

        session = pipeline.session(spec)
        sequential = StreamingDetector.from_session(session)
        fused = StreamingDetector.from_session(session)
        per_frame = [sequential.update(scene) for scene in scenes[:4]]
        chunked = fused.update_many(scenes[:4])
        assert len(chunked) == 4
        for left, right in zip(per_frame, chunked):
            assert [(t.track_id, t.cell, t.active) for t in left] == \
                   [(t.track_id, t.cell, t.active) for t in right]
            np.testing.assert_allclose([t.score for t in left],
                                       [t.score for t in right], rtol=1e-5)


# ----------------------------------------------------------------------
# Detection engine
# ----------------------------------------------------------------------
class TestDetectionEngine:
    def test_config_validation(self):
        for bad in (dict(max_batch=0), dict(flush_ms=-1.0),
                    dict(workers=0), dict(queue_size=0)):
            with pytest.raises(ValueError):
                EngineConfig(**bad)

    def test_multiworker_matches_sequential(self, pipeline, spec, scenes):
        """Concurrent micro-batched serving must agree with per-scene
        detection, in submission order, regardless of worker count."""
        session = pipeline.session(spec)
        sequential = [session.detect(scene) for scene in scenes]
        config = EngineConfig(max_batch=4, workers=2, flush_ms=5.0)
        with session.engine(config) as engine:
            concurrent = engine.detect_many(scenes)
        for left, right in zip(sequential, concurrent):
            assert [d.bbox for d in left] == [d.bbox for d in right]
            np.testing.assert_allclose([d.score for d in left],
                                       [d.score for d in right], rtol=1e-5)

    def test_bounded_queue_completes(self, pipeline, spec, scenes):
        session = pipeline.session(spec)
        config = EngineConfig(max_batch=2, workers=1, queue_size=1)
        with session.engine(config) as engine:
            results = engine.detect_many(scenes)
        assert len(results) == len(scenes)

    def test_partial_batch_flushes_on_timer(self, pipeline, spec, scenes):
        session = pipeline.session(spec)
        config = EngineConfig(max_batch=64, flush_ms=5.0)
        with session.engine(config) as engine:
            future = engine.submit(scenes[0])
            assert future.result(timeout=10.0) is not None

    def test_submit_after_close_raises(self, pipeline, spec, scenes):
        session = pipeline.session(spec)
        engine = session.engine(EngineConfig(max_batch=2))
        engine.close()
        assert engine.closed
        with pytest.raises(EngineClosed):
            engine.submit(scenes[0])

    def test_close_drains_outstanding_work(self, pipeline, spec, scenes):
        session = pipeline.session(spec)
        engine = session.engine(EngineConfig(max_batch=2, flush_ms=50.0))
        futures = [engine.submit(scene) for scene in scenes]
        engine.close(wait=True)
        assert all(future.done() for future in futures)
        for future in futures:
            assert future.result() is not None

    def test_close_is_idempotent(self, pipeline, spec):
        engine = pipeline.session(spec).engine()
        engine.close()
        engine.close()

    def test_bad_scene_fails_future_not_engine(self, pipeline, spec, scenes):
        session = pipeline.session(spec)
        config = EngineConfig(max_batch=1, flush_ms=1.0)
        with session.engine(config) as engine:
            bad = engine.submit(None)  # not a Scene: the batch fails
            with pytest.raises(Exception):
                bad.result(timeout=10.0)
            # The engine keeps serving after a failed batch.
            good = engine.submit(scenes[0])
            assert good.result(timeout=10.0) is not None

    def test_engine_telemetry(self, pipeline, spec, scenes):
        registry = get_registry()
        registry.reset()
        session = pipeline.session(spec)
        with session.engine(EngineConfig(max_batch=4)) as engine:
            engine.detect_many(scenes)
        counters = {name: c.value for name, c in registry.counters.items()}
        assert counters["engine.scenes"] == len(scenes)
        assert counters["engine.batches"] >= 1
        distributions = registry.distributions
        assert distributions["engine.batch_size"].count >= 1
        assert distributions["engine.batch_size"].max <= 4
        assert distributions["engine.queue_depth"].count == len(scenes)
        assert "engine.queue_wait" in registry.timers
