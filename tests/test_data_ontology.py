"""Attribute ontology: vocabularies, profiles, categories."""

import numpy as np
import pytest

from repro.data.ontology import (
    ATTRIBUTE_FAMILIES,
    COLOR_RGB,
    OBJECT_CATEGORIES,
    AttributeProfile,
    attribute_head_spec,
    attribute_index,
    attribute_value,
    category_names,
    category_of_profile,
    profile_for_category,
    sample_profile,
)


class TestVocabularies:
    def test_every_family_nonempty(self):
        for family, values in ATTRIBUTE_FAMILIES.items():
            assert len(values) >= 2, family

    def test_vocabularies_disjoint(self):
        """The SimulatedLLM relies on word → family being unambiguous."""
        seen = {}
        for family, values in ATTRIBUTE_FAMILIES.items():
            for value in values:
                assert value not in seen, f"{value} in {family} and {seen.get(value)}"
                seen[value] = family

    def test_every_color_has_rgb(self):
        for color in ATTRIBUTE_FAMILIES["color"]:
            assert color in COLOR_RGB
            assert all(0.0 <= c <= 1.0 for c in COLOR_RGB[color])

    def test_index_value_roundtrip(self):
        for family, values in ATTRIBUTE_FAMILIES.items():
            for i, value in enumerate(values):
                assert attribute_index(family, value) == i
                assert attribute_value(family, i) == value

    def test_index_errors(self):
        with pytest.raises(KeyError):
            attribute_index("flavor", "sweet")
        with pytest.raises(ValueError):
            attribute_index("color", "puce")

    def test_head_spec_matches_families(self):
        spec = dict(attribute_head_spec())
        assert set(spec) == set(ATTRIBUTE_FAMILIES)
        for family, cardinality in spec.items():
            assert cardinality == len(ATTRIBUTE_FAMILIES[family])


class TestProfiles:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AttributeProfile(shape="blob", color="red", size="small",
                             texture="solid", border="none")

    def test_as_indices(self):
        p = AttributeProfile("circle", "red", "small", "solid", "none")
        idx = p.as_indices()
        assert idx["shape"] == 0 and idx["color"] == 0

    def test_replace(self):
        p = AttributeProfile("circle", "red", "small", "solid", "none")
        q = p.replace(color="blue")
        assert q.color == "blue" and q.shape == "circle"
        assert p.color == "red"  # original untouched

    def test_sample_respects_fixed(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = sample_profile(rng, fixed={"color": "cyan", "shape": "ring"})
            assert p.color == "cyan" and p.shape == "ring"

    def test_sample_rejects_bad_fixed(self):
        with pytest.raises(ValueError):
            sample_profile(np.random.default_rng(0), fixed={"color": "puce"})

    def test_sample_covers_vocabulary(self):
        rng = np.random.default_rng(1)
        shapes = {sample_profile(rng).shape for _ in range(300)}
        assert shapes == set(ATTRIBUTE_FAMILIES["shape"])


class TestCategories:
    def test_category_constraints_valid(self):
        for name, spec in OBJECT_CATEGORIES.items():
            for family, value in spec.items():
                assert value in ATTRIBUTE_FAMILIES[family], (name, family)

    def test_profile_for_category_satisfies_spec(self):
        rng = np.random.default_rng(2)
        for name, spec in OBJECT_CATEGORIES.items():
            for _ in range(5):
                profile = profile_for_category(name, rng)
                attrs = profile.as_dict()
                for family, value in spec.items():
                    assert attrs[family] == value

    def test_category_of_profile_recovers(self):
        rng = np.random.default_rng(3)
        # note: category_of_profile returns the *first* matching category,
        # so we only assert it matches the spec of the returned name
        for name in category_names():
            profile = profile_for_category(name, rng)
            recovered = category_of_profile(profile)
            assert recovered is not None
            spec = OBJECT_CATEGORIES[recovered]
            assert all(profile.as_dict()[f] == v for f, v in spec.items())

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            profile_for_category("unicorn", np.random.default_rng(0))

    def test_distractor_possible(self):
        """Some profiles match no category (distractors must exist)."""
        rng = np.random.default_rng(4)
        assert any(
            category_of_profile(sample_profile(rng)) is None for _ in range(200)
        )
