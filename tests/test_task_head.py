"""Task-specific head: model plumbing, distillation supervision,
near-miss negatives, detector integration, quantization of specialists."""

import dataclasses

import numpy as np
import pytest

from repro.data import attribute_head_spec, build_task_windows, get_task
from repro.data.datasets import _sample_near_miss, num_classes
from repro.distill import DistillationConfig, Distiller
from repro.detect import predict_windows, window_task_accuracy
from repro.nn import VisionTransformer, ViTConfig
from repro.nn.vit import TaskHead
from repro.quant import quantize_vit
from repro.quant.vit import _model_sites
from repro.tensor import Tensor, check_gradient, randn


@pytest.fixture(scope="module")
def task_vit():
    config = dataclasses.replace(
        ViTConfig.student(num_classes(), attribute_head_spec()),
        with_task_head=True,
    )
    model = VisionTransformer(config, rng=np.random.default_rng(5))
    model.eval()
    return model


class TestTaskHeadModule:
    def test_output_shape(self):
        head = TaskHead(16, rng=np.random.default_rng(0))
        out = head(randn(4, 16, rng=np.random.default_rng(1)))
        assert out.shape == (4, 2)

    def test_gradient(self):
        head = TaskHead(8, rng=np.random.default_rng(0))
        x = randn(2, 8, rng=np.random.default_rng(1), requires_grad=True)
        ok, err = check_gradient(lambda t: head(t), [x], atol=2e-2)
        assert ok, err

    def test_vit_emits_task_logits(self, task_vit):
        x = randn(3, 3, 32, 32, rng=np.random.default_rng(0))
        out = task_vit(x)
        assert out["task_logits"].shape == (3, 2)

    def test_vit_without_flag_has_no_head(self, student_vit):
        assert student_vit.task_head is None
        x = randn(1, 3, 32, 32, rng=np.random.default_rng(0))
        assert "task_logits" not in student_vit(x)

    def test_flops_include_task_head(self):
        base = ViTConfig.student(4)
        with_head = dataclasses.replace(base, with_task_head=True)
        a = VisionTransformer(base, rng=np.random.default_rng(0))
        b = VisionTransformer(with_head, rng=np.random.default_rng(0))
        assert b.flops_per_image() > a.flops_per_image()


class TestNearMissNegatives:
    @pytest.mark.parametrize("task_name", ["valve_inspection", "roadside_hazards",
                                           "sterile_supplies"])
    def test_near_miss_violates_exactly_one_family(self, task_name):
        task = get_task(task_name)
        rng = np.random.default_rng(0)
        for _ in range(20):
            profile = _sample_near_miss(task, rng)
            if profile is None:
                continue
            assert not task.matches(profile)

    def test_task_windows_contain_near_misses(self):
        task = get_task("cargo_audit")
        ds = build_task_windows(task, seed=0, num_positive=30, num_negative=60,
                                hard_negative_fraction=0.8,
                                near_miss_fraction=1.0)
        # near-miss negatives differ from a positive in exactly one
        # constrained family; at minimum they must be objects, not background
        hard_negatives = [
            p for p, lbl in zip(ds.profiles, ds.task_labels)
            if lbl < 0.5 and p is not None
        ]
        assert len(hard_negatives) >= 30


class TestDistilledTaskHead:
    @pytest.fixture(scope="class")
    def distilled(self, task_vit):
        task = get_task("valve_inspection")
        teacher = VisionTransformer(
            ViTConfig.student(num_classes(), attribute_head_spec()),
            rng=np.random.default_rng(1))
        dataset = build_task_windows(task, seed=3, num_positive=60,
                                     num_negative=80)
        student = VisionTransformer(task_vit.config, rng=np.random.default_rng(2))
        Distiller(teacher, student,
                  DistillationConfig(epochs=6, task_label_weight=1.0, seed=0),
                  rng=np.random.default_rng(2)).distill(dataset)
        return student, dataset

    def test_head_learns_relevance(self, distilled):
        student, dataset = distilled
        predictions = predict_windows(student, dataset.images)
        assert "task_probs" in predictions
        decisions = predictions["task_probs"] > 0.5
        truth = dataset.task_labels > 0.5
        assert (decisions == truth).mean() > 0.7

    def test_window_task_accuracy_uses_head(self, distilled):
        student, dataset = distilled
        acc = window_task_accuracy(student, dataset, matcher=None)
        assert acc > 0.6


class TestQuantizedSpecialist:
    def test_sites_include_task_head(self, task_vit):
        sites = _model_sites(task_vit)
        assert "task_head.fc1" in sites and "task_head.fc2" in sites

    def test_quantized_specialist_emits_task_logits(self, task_vit):
        rng = np.random.default_rng(0)
        calibration = rng.random((16, 3, 32, 32)).astype(np.float32)
        q = quantize_vit(task_vit, calibration)
        out = q(calibration[:3])
        assert out["task_logits"].shape == (3, 2)
        from repro.tensor import no_grad

        with no_grad():
            ref = task_vit(Tensor(calibration[:3]))["task_logits"].data
        assert np.abs(out["task_logits"] - ref).max() < 0.3 * max(
            np.abs(ref).max(), 1.0)

    def test_compiler_emits_task_head_gemms(self, task_vit):
        from repro.hw import compile_model, GemmOp

        rng = np.random.default_rng(0)
        q = quantize_vit(task_vit, rng.random((8, 3, 32, 32)).astype(np.float32))
        program = compile_model(q)
        names = [op.name for op in program if isinstance(op, GemmOp)]
        assert "task_head.fc1" in names and "task_head.fc2" in names
        assert program.total_macs() == task_vit.flops_per_image()
