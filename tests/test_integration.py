"""Cross-module integration tests.

These exercise full paths at miniature scale: train → quantize → compile →
simulate, and mission text → graph → detect → metrics.  The accelerator
functional-equivalence test is the key hardware/software contract: every
GEMM the compiler schedules must compute exactly what the quantized model
computes.
"""

import numpy as np
import pytest

from repro.core import (
    ArtifactBuilder,
    ITaskPipeline,
    TaskSpec,
    build_quantized_configuration,
)
from repro.data import SceneConfig, SceneGenerator, build_window_dataset, get_task
from repro.data.datasets import num_classes
from repro.distill import ModelTrainer, TrainingConfig, evaluate_model
from repro.hw import (
    AcceleratorConfig,
    Compiler,
    GemmOp,
    GPUModel,
    Simulator,
    SystolicArray,
)
from repro.quant import quantize_vit
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def small_trained_model(student_vit):
    """Student ViT briefly trained so logits are not random."""
    dataset = build_window_dataset(seed=41, num_category_objects=64,
                                   num_distractors=16, num_background=16)
    import copy

    model = student_vit  # reuse architecture; train a copy via state dict
    from repro.nn import VisionTransformer

    trained = VisionTransformer(model.config, rng=np.random.default_rng(8))
    ModelTrainer(trained, TrainingConfig(epochs=5, batch_size=32,
                                         learning_rate=2e-3, seed=0)).fit(dataset)
    return trained


class TestQuantizedAccuracyRetention:
    def test_int8_accuracy_close_to_float(self, small_trained_model):
        val = build_window_dataset(seed=42, num_category_objects=48,
                                   num_distractors=12, num_background=12)
        float_acc = evaluate_model(small_trained_model, val)["val_accuracy"]
        q = quantize_vit(small_trained_model, val.images[:48])
        q_acc = (q.classify(val.images) == val.class_labels).mean()
        assert q_acc >= float_acc - 0.05


class TestAcceleratorFunctionalEquivalence:
    def test_every_scheduled_gemm_bit_matches_kernel(self, small_trained_model):
        """Run each compiled weight GEMM through the systolic array and
        compare with the QuantizedLinear integer kernel."""
        rng = np.random.default_rng(0)
        calibration = rng.random((16, 3, 32, 32)).astype(np.float32)
        q = quantize_vit(small_trained_model, calibration)
        config = AcceleratorConfig.edge_default()
        program = Compiler(config).compile(q)
        array = SystolicArray(config)
        for op in program:
            if not isinstance(op, GemmOp) or op.site is None:
                continue
            layer = q.layers[op.site]
            x = rng.random((3, layer.in_features)).astype(np.float32)
            x_q = layer.quantize_input(x)
            reference = x_q.astype(np.int64) @ layer.weight_q.T.astype(np.int64)
            hw_result, _ = array.run(x_q, layer.weight_q.T)
            np.testing.assert_array_equal(hw_result, reference)

    def test_end_to_end_latency_sane(self, small_trained_model):
        rng = np.random.default_rng(0)
        q = quantize_vit(small_trained_model,
                         rng.random((16, 3, 32, 32)).astype(np.float32))
        config = AcceleratorConfig.edge_default()
        report = Simulator(config).simulate(Compiler(config).compile(q))
        # real-time budget: well under one 30 fps frame
        assert report.latency_s < 1.0 / 30.0
        gpu_report = GPUModel().simulate(Compiler(config).compile(q))
        assert gpu_report.latency_s > report.latency_s


class TestMissionEndToEnd:
    def test_text_to_detections(self, small_trained_model):
        rng = np.random.default_rng(0)
        qcfg = build_quantized_configuration(
            small_trained_model,
            calibration=rng.random((24, 3, 32, 32)).astype(np.float32))
        pipeline = ITaskPipeline(qcfg)
        task = get_task("roadside_hazards")
        spec = TaskSpec.from_definition(task)
        scenes = SceneGenerator(SceneConfig(), seed=17).generate_batch(4)
        detections = pipeline.detect(spec, scenes[0])
        assert all(0.0 <= d.score <= 1.0 for d in detections)
        accuracy = pipeline.evaluate(spec, scenes)
        # the model here is trained for only a few epochs, so this is a
        # plumbing check, not a quality bar (E1 covers quality)
        assert 0.0 <= accuracy <= 1.0

    def test_kg_improves_over_no_kg(self, small_trained_model):
        """The headline qualitative claim: KG conditioning helps task
        detection (fewer false fires on irrelevant objects)."""
        rng = np.random.default_rng(0)
        qcfg = build_quantized_configuration(
            small_trained_model,
            calibration=rng.random((24, 3, 32, 32)).astype(np.float32))
        task = get_task("stop_control")  # narrow task: KG filtering matters
        spec = TaskSpec.from_definition(task)
        scenes = SceneGenerator(SceneConfig(), seed=23).generate_batch(8)
        with_kg = ITaskPipeline(qcfg, use_kg=True).evaluate(spec, scenes)
        without_kg = ITaskPipeline(qcfg, use_kg=False).evaluate(spec, scenes)
        assert with_kg >= without_kg


class TestArtifactBuilder:
    def test_cache_roundtrip(self, tmp_path):
        builder = ArtifactBuilder(root=str(tmp_path), seed=99,
                                  teacher_epochs=1, student_epochs=1,
                                  verbose=False)
        teacher_a = builder.teacher()
        # second call must load from cache, not retrain
        teacher_b = builder.teacher()
        a = teacher_a.state_dict()
        b = teacher_b.state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
        assert builder.registry.exists(builder._key("teacher"))
