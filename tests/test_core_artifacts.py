"""Self-healing artifact cache: integrity checks, quarantine, locking.

Training is monkeypatched to instant tiny-model construction so these
tests exercise the full registry/builder protocol (validate -> load |
quarantine -> rebuild -> atomic save) in milliseconds.
"""

import json
import os
import threading
import time
import types

import numpy as np
import pytest

from repro.core import (
    ArtifactBuilder,
    CorruptArtifactError,
    FileLock,
    LockTimeout,
    ModelRegistry,
)
from repro.nn import VisionTransformer, file_sha256
from repro.obs import get_registry as obs_registry


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def fast_builder(tmp_path, monkeypatch, tiny_vit_config):
    """ArtifactBuilder whose training builders return tiny models instantly,
    with per-builder call counts on ``builder.calls``."""
    calls = {"teacher": 0, "student": 0, "specialist": 0}

    def make_model(seed):
        model = VisionTransformer(tiny_vit_config,
                                  rng=np.random.default_rng(seed))
        model.eval()
        return model

    def fake_teacher(epochs=1, seed=0):
        calls["teacher"] += 1
        return make_model(seed)

    def fake_student(teacher, epochs=1, seed=0):
        calls["student"] += 1
        return make_model(seed)

    def fake_specialist(teacher, task, epochs=1, seed=0,
                        num_positive=0, num_negative=0):
        calls["specialist"] += 1
        return types.SimpleNamespace(student=make_model(seed))

    monkeypatch.setattr("repro.core.artifacts.build_teacher", fake_teacher)
    monkeypatch.setattr("repro.core.artifacts.build_multitask_student",
                        fake_student)
    monkeypatch.setattr("repro.core.artifacts.distill_task_student",
                        fake_specialist)
    builder = ArtifactBuilder(root=str(tmp_path), seed=0, verbose=False)
    builder.calls = calls
    return builder


def teacher_paths(builder):
    return builder.registry._paths(builder._key("teacher"))


def seed_teacher(builder):
    """Populate the cache with a valid teacher entry; returns its paths."""
    builder.teacher()
    return teacher_paths(builder)


# ----------------------------------------------------------------------
# registry: exists / sanitization / metadata
# ----------------------------------------------------------------------
class TestRegistryValidation:
    def test_exists_requires_weights_file(self, fast_builder):
        """Regression: the seed shipped ``teacher.json`` without
        ``teacher.npz`` and ``exists()`` said True, so ``load()`` crashed
        with FileNotFoundError instead of the builder retraining."""
        paths = seed_teacher(fast_builder)
        registry = fast_builder.registry
        key = fast_builder._key("teacher")
        assert registry.exists(key)
        os.unlink(paths["weights"])
        assert not registry.exists(key)
        status = registry.validate(key)
        assert status.corrupt and not status.missing
        assert any("meta without weights" in p for p in status.problems)

    def test_exists_requires_meta_file(self, fast_builder):
        paths = seed_teacher(fast_builder)
        os.unlink(paths["meta"])
        assert not fast_builder.registry.exists(fast_builder._key("teacher"))

    def test_missing_is_not_corrupt(self, tmp_path):
        status = ModelRegistry(str(tmp_path)).validate("ghost")
        assert status.missing and not status.ok and not status.corrupt

    def test_name_sanitization_is_injective(self, tmp_path, tiny_vit):
        registry = ModelRegistry(str(tmp_path))
        registry.save("a/b", tiny_vit)
        registry.save("a_b", tiny_vit)
        a = registry._paths("a/b")
        b = registry._paths("a_b")
        assert a["weights"] != b["weights"] and a["meta"] != b["meta"]
        assert registry.names() == ["a/b", "a_b"]
        assert registry.exists("a/b") and registry.exists("a_b")
        registry.load("a/b")  # round-trips through the encoded filename

    def test_metadata_missing_is_friendly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no registered model named"):
            ModelRegistry(str(tmp_path)).metadata("ghost")

    def test_save_records_matching_integrity(self, fast_builder):
        paths = seed_teacher(fast_builder)
        with open(paths["meta"]) as handle:
            integrity = json.load(handle)["integrity"]
        assert integrity["weights_sha256"] == file_sha256(paths["weights"])
        assert integrity["weights_bytes"] == os.path.getsize(paths["weights"])
        assert integrity["state_keys"]
        # atomic writes leave no temp droppings behind
        leftovers = [f for f in os.listdir(fast_builder.registry.root)
                     if f.endswith(".tmp")]
        assert leftovers == []

    def test_save_overwrites_existing_entry(self, fast_builder, tiny_vit):
        paths = seed_teacher(fast_builder)
        key = fast_builder._key("teacher")
        fast_builder.registry.save(key, tiny_vit)
        assert fast_builder.registry.exists(key)
        with open(paths["meta"]) as handle:
            meta = json.load(handle)
        assert meta["integrity"]["weights_sha256"] == \
            file_sha256(paths["weights"])

    def test_legacy_meta_without_integrity_still_loads(self, fast_builder):
        """Pre-PR metas carry no integrity block; they must stay loadable."""
        paths = seed_teacher(fast_builder)
        with open(paths["meta"]) as handle:
            meta = json.load(handle)
        del meta["integrity"]
        with open(paths["meta"], "w") as handle:
            json.dump(meta, handle)
        key = fast_builder._key("teacher")
        assert fast_builder.registry.exists(key)
        fast_builder.registry.load(key)


# ----------------------------------------------------------------------
# corruption injection -> quarantine + rebuild (or strict error)
# ----------------------------------------------------------------------
def _corrupt_orphan_meta(paths):
    os.unlink(paths["weights"])


def _corrupt_truncate(paths):
    with open(paths["weights"], "rb") as handle:
        blob = handle.read()
    with open(paths["weights"], "wb") as handle:
        handle.write(blob[: len(blob) // 2])


def _corrupt_truncate_legacy(paths):
    """Truncation with no integrity block: only np.load itself can object."""
    _corrupt_truncate(paths)
    with open(paths["meta"]) as handle:
        meta = json.load(handle)
    meta.pop("integrity", None)
    with open(paths["meta"], "w") as handle:
        json.dump(meta, handle)


def _corrupt_meta_json(paths):
    with open(paths["meta"], "w") as handle:
        handle.write("{ this is not json")


def _corrupt_checksum(paths):
    with open(paths["meta"]) as handle:
        meta = json.load(handle)
    meta["integrity"]["weights_sha256"] = "0" * 64
    with open(paths["meta"], "w") as handle:
        json.dump(meta, handle)


def _corrupt_key_set(paths):
    np.savez_compressed(paths["weights"], wrong_key=np.zeros(3, np.float32))
    # keep declared size/checksum consistent so the key-set check is what fires
    with open(paths["meta"]) as handle:
        meta = json.load(handle)
    meta["integrity"]["weights_bytes"] = os.path.getsize(paths["weights"])
    meta["integrity"]["weights_sha256"] = file_sha256(paths["weights"])
    with open(paths["meta"], "w") as handle:
        json.dump(meta, handle)


CORRUPTIONS = {
    "orphan_meta": _corrupt_orphan_meta,
    "truncated_npz": _corrupt_truncate,
    "truncated_npz_legacy_meta": _corrupt_truncate_legacy,
    "malformed_meta_json": _corrupt_meta_json,
    "checksum_mismatch": _corrupt_checksum,
    "key_set_mismatch": _corrupt_key_set,
}


class TestCorruptionRecovery:
    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_quarantine_and_rebuild(self, fast_builder, kind):
        paths = seed_teacher(fast_builder)
        assert fast_builder.calls["teacher"] == 1
        CORRUPTIONS[kind](paths)
        key = fast_builder._key("teacher")
        assert not fast_builder.registry.exists(key)

        model = fast_builder.teacher()  # heals instead of raising
        assert fast_builder.calls["teacher"] == 2
        assert model is not None
        assert fast_builder.registry.exists(key)
        quarantined = os.listdir(fast_builder.registry.quarantine_root)
        assert quarantined, "damaged files should be preserved for post-mortem"
        # healed cache is a plain hit afterwards
        fast_builder.teacher()
        assert fast_builder.calls["teacher"] == 2

    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_strict_mode_raises_with_path(self, fast_builder, monkeypatch,
                                          kind):
        paths = seed_teacher(fast_builder)
        CORRUPTIONS[kind](paths)
        monkeypatch.setenv("REPRO_ARTIFACT_STRICT", "1")
        with pytest.raises(CorruptArtifactError) as excinfo:
            fast_builder.teacher()
        message = str(excinfo.value)
        assert fast_builder._key("teacher") in message
        assert str(fast_builder.registry.root) in message
        assert fast_builder.calls["teacher"] == 1  # no silent retrain
        # corrupt entry stays in place for inspection in strict mode
        quarantine = fast_builder.registry.quarantine_root
        assert not os.path.isdir(quarantine) or not os.listdir(quarantine)

    def test_strict_mode_still_trains_on_clean_miss(self, fast_builder,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_STRICT", "1")
        fast_builder.teacher()
        assert fast_builder.calls["teacher"] == 1

    def test_deep_load_failure_also_heals(self, fast_builder, tmp_path,
                                          tiny_vit_config):
        """Validate can pass while the model itself rejects the state dict
        (consistent integrity block over wrong-shaped arrays)."""
        paths = seed_teacher(fast_builder)
        state = {key: np.zeros(2, np.float32)
                 for key in sorted(VisionTransformer(
                     tiny_vit_config,
                     rng=np.random.default_rng(0)).state_dict())}
        np.savez_compressed(paths["weights"], **state)
        with open(paths["meta"]) as handle:
            meta = json.load(handle)
        meta["integrity"]["weights_bytes"] = os.path.getsize(paths["weights"])
        meta["integrity"]["weights_sha256"] = file_sha256(paths["weights"])
        meta["integrity"]["state_keys"] = sorted(state)
        with open(paths["meta"], "w") as handle:
            json.dump(meta, handle)
        model = fast_builder.teacher()
        assert model is not None
        assert fast_builder.calls["teacher"] == 2

    def test_specialist_and_student_rebuild(self, fast_builder):
        config = fast_builder.task_student_by_name("cargo_audit")
        assert config.task_name == "cargo_audit"
        assert fast_builder.calls["specialist"] == 1
        student = fast_builder.multitask_student()
        assert student is not None
        assert fast_builder.calls["student"] == 1
        # all cached now: no further training
        fast_builder.task_student_by_name("cargo_audit")
        fast_builder.multitask_student()
        assert fast_builder.calls == {"teacher": 1, "student": 1,
                                      "specialist": 1}


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestCacheCounters:
    def test_hit_miss_corrupt_rebuild_counters(self, fast_builder):
        obs = obs_registry()
        obs.reset()
        fast_builder.teacher()          # miss -> rebuild
        fast_builder.teacher()          # hit
        paths = teacher_paths(fast_builder)
        _corrupt_truncate(paths)
        fast_builder.teacher()          # corrupt -> quarantine -> rebuild
        counters = obs.snapshot()["counters"]
        assert counters["artifacts.cache.miss"] == 1
        assert counters["artifacts.cache.hit"] == 1
        assert counters["artifacts.cache.corrupt"] == 1
        assert counters["artifacts.cache.quarantined"] == 1
        assert counters["artifacts.cache.rebuild"] == 2
        assert "artifacts.cache.hit" in obs.report()

    def test_counters_materialized_even_on_pure_hits(self, fast_builder):
        fast_builder.teacher()
        obs = obs_registry()
        obs.reset()
        fast_builder.teacher()  # pure hit after reset
        counters = obs.snapshot()["counters"]
        for name in ("hit", "miss", "corrupt", "quarantined", "rebuild"):
            assert f"artifacts.cache.{name}" in counters
        assert counters["artifacts.cache.hit"] == 1
        assert counters["artifacts.cache.rebuild"] == 0


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_concurrent_writers_train_exactly_once(self, fast_builder,
                                                   monkeypatch):
        """Two+ workers racing on the same key: one trains, the rest block
        on the per-key lock and then load the published checkpoint."""
        original = fast_builder.calls
        barrier = threading.Barrier(4)
        results, errors = [], []

        import repro.core.artifacts as artifacts_mod
        slow_inner = artifacts_mod.build_teacher

        def slow_teacher(epochs=1, seed=0):
            time.sleep(0.15)  # widen the race window
            return slow_inner(epochs=epochs, seed=seed)

        monkeypatch.setattr(artifacts_mod, "build_teacher", slow_teacher)

        def worker():
            try:
                barrier.wait(timeout=5)
                results.append(fast_builder.teacher())
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 4
        assert original["teacher"] == 1, "exactly one training run"
        state = results[0].state_dict()
        for other in results[1:]:
            for key, value in other.state_dict().items():
                np.testing.assert_array_equal(value, state[key])

    def test_lock_timeout(self, tmp_path):
        path = str(tmp_path / "key.lock")
        with FileLock(path, timeout=1.0):
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.2, poll_interval=0.02).acquire()
        # released: immediate acquisition succeeds
        FileLock(path, timeout=0.2).acquire().release()

    def test_gc_skips_actively_held_lock(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        lock_path = registry.lock_path("busy-key")
        with FileLock(lock_path, timeout=1.0):
            removed = registry.gc()
            assert lock_path not in removed
            assert os.path.exists(lock_path)
        # released locks are ordinary stale files and do get collected
        stale = os.path.join(registry.root, "stale.lock")
        with open(stale, "w") as handle:
            handle.write("pid=0\n")
        assert stale in registry.gc()

    def test_exclusive_mode_breaks_stale_lock(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_LOCK_MODE", "exclusive")
        path = tmp_path / "key.lock"
        path.write_text("pid=999999 time=0\n")
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = FileLock(str(path), timeout=2.0, poll_interval=0.02,
                        stale_after=60.0)
        lock.acquire()  # stale holder is broken instead of timing out
        lock.release()
        assert not path.exists()
