"""CLI commands, graph visualization, and PPM image IO."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import SceneConfig, SceneGenerator, get_task
from repro.data.io import draw_box, export_scene, read_ppm, to_uint8, write_ppm
from repro.kg import Constraint, ConstraintKind, KnowledgeGraph, SimulatedLLM
from repro.kg.visualize import render_ascii, render_dot


class TestVisualize:
    @pytest.fixture(scope="class")
    def kg(self):
        return SimulatedLLM().generate_for_task(get_task("valve_inspection"))

    def test_ascii_mentions_constraints(self, kg):
        text = render_ascii(kg)
        assert "valve_inspection" in text
        assert "color" in text and "blue" in text
        assert "must be" in text

    def test_ascii_empty_graph(self):
        text = render_ascii(KnowledgeGraph("empty"))
        assert "no constraints" in text

    def test_excludes_rendered_differently(self):
        kg = KnowledgeGraph("t")
        kg.add_constraint(Constraint(ConstraintKind.EXCLUDES, "size",
                                     frozenset({"small"}), 1.0))
        assert "must NOT be" in render_ascii(kg)

    def test_dot_is_valid_structure(self, kg):
        dot = render_dot(kg)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"task"' in dot and "requires" in dot


class TestImageIO:
    def test_to_uint8_range(self):
        image = np.random.default_rng(0).random((3, 8, 8)).astype(np.float32)
        pixels = to_uint8(image)
        assert pixels.shape == (8, 8, 3)
        assert pixels.dtype == np.uint8

    def test_to_uint8_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            to_uint8(np.zeros((8, 8)))

    def test_ppm_roundtrip(self, tmp_path):
        image = np.random.default_rng(1).random((3, 16, 12)).astype(np.float32)
        path = str(tmp_path / "img.ppm")
        write_ppm(image, path)
        restored = read_ppm(path)
        assert restored.shape == image.shape
        assert np.abs(restored - np.clip(image, 0, 1)).max() <= 1.0 / 255 + 1e-6

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "fake.ppm"
        path.write_bytes(b"JUNK")
        with pytest.raises(ValueError):
            read_ppm(str(path))

    def test_draw_box_marks_outline(self):
        image = np.zeros((3, 20, 20), np.float32)
        boxed = draw_box(image, (5, 5, 15, 15), color=(1.0, 0.0, 0.0))
        assert boxed[0, 5, 10] == 1.0       # top edge
        assert boxed[0, 10, 5] == 1.0       # left edge
        assert boxed[0, 10, 10] == 0.0      # interior untouched
        assert image.max() == 0.0           # original untouched

    def test_export_scene(self, tmp_path):
        scene = SceneGenerator(SceneConfig(), seed=0).generate()
        path = str(tmp_path / "scene.ppm")
        export_scene(scene, path)
        restored = read_ppm(path)
        assert restored.shape == scene.image.shape


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tasks_command(self, capsys):
        assert main(["tasks"]) == 0
        out = capsys.readouterr().out
        assert "roadside_hazards" in out and "driving" in out

    def test_graph_command(self, capsys):
        assert main(["graph", "--task", "cargo_audit"]) == 0
        out = capsys.readouterr().out
        assert "cyan" in out

    def test_graph_dot(self, capsys):
        assert main(["graph", "--task", "cargo_audit", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_graph_unknown_task(self):
        with pytest.raises(KeyError):
            main(["graph", "--task", "nonexistent"])

    def test_models_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert main(["models"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_quant_bench_command(self, capsys):
        assert main(["quant", "bench", "--rows", "64",
                     "--batch-images", "8", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "patch_proj" in out
        assert "bit-identical" in out


class TestArtifactsCLI:
    @pytest.fixture()
    def cache(self, tmp_path, monkeypatch, tiny_vit):
        from repro.core import ModelRegistry

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        registry = ModelRegistry(str(tmp_path))
        registry.save("demo", tiny_vit, extra={"role": "test"})
        return registry

    def test_list_empty(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert main(["artifacts", "list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_verify_clean_cache(self, capsys, cache):
        assert main(["artifacts", "verify"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "0 corrupt" in out

    def test_verify_flags_truncated_weights(self, capsys, cache):
        weights = cache._paths("demo")["weights"]
        with open(weights, "r+b") as handle:
            handle.truncate(100)
        assert main(["artifacts", "verify"]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "1 corrupt" in out

    def test_verify_quarantine_then_gc(self, capsys, cache):
        import os

        weights = cache._paths("demo")["weights"]
        with open(weights, "wb") as handle:
            handle.write(b"garbage")
        assert main(["artifacts", "verify", "--quarantine"]) == 1
        assert os.path.isdir(cache.quarantine_root)
        assert os.listdir(cache.quarantine_root)
        assert main(["artifacts", "gc"]) == 0
        assert not os.path.isdir(cache.quarantine_root)
        # cache is clean (and empty) again
        assert main(["artifacts", "verify"]) == 0

    def test_gc_dry_run_removes_nothing(self, capsys, cache):
        import os

        lock = os.path.join(cache.root, "stale.lock")
        with open(lock, "w") as handle:
            handle.write("pid=1\n")
        assert main(["artifacts", "gc", "--dry-run"]) == 0
        assert os.path.exists(lock)
        assert "would remove" in capsys.readouterr().out
        assert main(["artifacts", "gc"]) == 0
        assert not os.path.exists(lock)

    def test_models_survives_corrupt_meta(self, capsys, cache):
        meta = cache._paths("demo")["meta"]
        with open(meta, "w") as handle:
            handle.write("{ nope")
        assert main(["models"]) == 0
        assert "unreadable meta" in capsys.readouterr().out


class TestFuzzCLI:
    def test_fuzz_run_smoke(self, capsys, tmp_path):
        assert main(["fuzz", "run", "--seed", "0", "--budget", "4",
                     "--artifacts-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out and "0 divergent" in out
        assert not list(tmp_path.glob("*.json"))   # no divergence, no case

    def test_fuzz_corpus_smoke(self, capsys):
        assert main(["fuzz", "corpus"]) == 0
        out = capsys.readouterr().out
        assert "bug_zero_cells.json: ok" in out
        assert "0 divergent" in out

    def test_fuzz_corpus_empty_dir_fails(self, capsys, tmp_path):
        assert main(["fuzz", "corpus", "--dir", str(tmp_path)]) == 1
        assert "no corpus case files" in capsys.readouterr().out

    def test_fuzz_replay_clean_case(self, capsys):
        from repro.fuzz import default_corpus_dir

        case = str(default_corpus_dir() / "bug_stale_aging.json")
        assert main(["fuzz", "replay", case]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_fuzz_replay_reports_divergence(self, capsys, tmp_path,
                                            monkeypatch):
        """A recorded divergence replays deterministically to exit 1."""
        import json

        import repro.fuzz.runner as runner_module
        from repro.fuzz import default_corpus_dir
        from repro.fuzz.oracles import Divergence

        def broken_oracle(spec, ctx):
            return [Divergence("stream_fused", "synthetic divergence")]

        monkeypatch.setattr(runner_module, "ORACLES",
                            (("stream_fused", broken_oracle),))
        with open(default_corpus_dir() / "bug_zero_cells.json") as handle:
            case = json.load(handle)
        case["divergences"] = [{"oracle": "stream_fused",
                                "message": "synthetic divergence",
                                "details": {}}]
        path = tmp_path / "divergent.json"
        path.write_text(json.dumps(case))
        assert main(["fuzz", "replay", str(path)]) == 1
        assert "synthetic divergence" in capsys.readouterr().out


class TestStreamCLI:
    """`repro stream {run,bench}` — hermetic via --untrained."""

    def test_stream_run_smoke(self, capsys):
        assert main(["stream", "run", "--untrained", "--frames", "3",
                     "--grid", "2", "--motion-rate", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "stream run: task=roadside_hazards" in out
        assert "frame   0:" in out and "frame   2:" in out
        assert "delta gate:" in out and "hit rate" in out

    def test_stream_run_no_delta_gate(self, capsys):
        assert main(["stream", "run", "--untrained", "--frames", "2",
                     "--grid", "2", "--no-delta-gate"]) == 0
        out = capsys.readouterr().out
        assert "delta_gate=False" in out
        assert "delta gate:" not in out   # no gate summary when disabled

    def test_stream_bench_smoke(self, capsys):
        assert main(["stream", "bench", "--untrained", "--cameras", "1",
                     "--frames", "4", "--grid", "2",
                     "--motion-rates", "0.0,1.0"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "identical" in out
        assert "yes" in out and "NO" not in out

    def test_stream_bench_carryover_mode(self, capsys):
        assert main(["stream", "bench", "--untrained", "--cameras", "1",
                     "--frames", "3", "--grid", "2",
                     "--motion-rates", "0.5",
                     "--motion-threshold", "0.05",
                     "--refresh-every", "2"]) == 0
        out = capsys.readouterr().out
        # approximate gate: identity is not asserted, shown as "-"
        assert "-" in out and "FAILED" not in out
