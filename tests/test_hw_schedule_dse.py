"""Scheduler timeline and design-space exploration."""

import numpy as np
import pytest

from repro.hw import (
    AcceleratorConfig,
    Compiler,
    DesignPoint,
    Simulator,
    build_schedule,
    pareto_front,
    sweep,
)
from repro.quant import quantize_vit


@pytest.fixture(scope="module")
def quantized(student_vit):
    rng = np.random.default_rng(0)
    return quantize_vit(student_vit,
                        rng.random((16, 3, 32, 32)).astype(np.float32))


@pytest.fixture(scope="module")
def program(quantized):
    return Compiler(AcceleratorConfig.edge_default()).compile(quantized)


class TestSchedule:
    def test_makespan_matches_simulator(self, program):
        """The schedule enforces per-engine serialization that the
        simulator's aggregate model ignores, so its makespan is bounded
        below by the simulator total (minus rounding) and stays close."""
        config = AcceleratorConfig.edge_default()
        schedule = build_schedule(program, config, overlap_efficiency=0.8)
        report = Simulator(config, overlap_efficiency=0.8).simulate(program)
        assert schedule.makespan >= report.total_cycles - len(program)
        assert schedule.makespan <= report.total_cycles * 1.25

    def test_every_op_scheduled(self, program):
        schedule = build_schedule(program, AcceleratorConfig.edge_default())
        assert len(schedule.ops) == len(program)
        for op in schedule.ops:
            assert op.end > op.start >= 0

    def test_same_engine_ops_serialize(self, program):
        schedule = build_schedule(program, AcceleratorConfig.edge_default())
        for engine in ("gemm", "vector", "dma"):
            ops = schedule.engine_ops(engine)
            for a, b in zip(ops, ops[1:]):
                assert b.start >= a.end - 1  # rounding slack of one cycle

    def test_occupancy_bounds(self, program):
        schedule = build_schedule(program, AcceleratorConfig.edge_default())
        for engine in ("gemm", "vector", "dma"):
            assert 0.0 <= schedule.engine_occupancy(engine) <= 1.0 + 1e-9

    def test_gantt_renders(self, program):
        schedule = build_schedule(program, AcceleratorConfig.edge_default())
        chart = schedule.gantt()
        assert "gemm" in chart and "vector" in chart and "dma" in chart
        assert "#" in chart


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def points(self, quantized):
        return sweep(quantized, array_sizes=((8, 8), (16, 16)),
                     clocks_mhz=(250.0, 500.0))

    def test_sweep_size(self, points):
        assert len(points) == 4

    def test_rows_well_formed(self, points):
        for point in points:
            row = point.as_row()
            assert row["latency_ms"] > 0
            assert row["energy_uj"] > 0
            assert row["area_mm2"] > 0

    def test_higher_clock_lower_latency(self, points):
        by_key = {(p.config.array_rows, p.config.clock_mhz): p for p in points}
        assert (by_key[(16, 500.0)].latency_ms
                < by_key[(16, 250.0)].latency_ms)

    def test_pareto_front_is_nondominated(self, points):
        front = pareto_front(points)
        assert front
        for a in front:
            assert not any(b.dominates(a) for b in points)

    def test_pareto_front_sorted(self, points):
        front = pareto_front(points)
        latencies = [p.latency_ms for p in front]
        assert latencies == sorted(latencies)

    def test_dominance_semantics(self):
        cfg = AcceleratorConfig.edge_default()
        better = DesignPoint(cfg, latency_ms=1.0, energy_uj=1.0,
                             area_mm2=1.0, utilization=0.5)
        worse = DesignPoint(cfg, latency_ms=2.0, energy_uj=1.0,
                            area_mm2=1.0, utilization=0.5)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(better)
