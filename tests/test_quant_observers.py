"""Calibration observers."""

import numpy as np
import pytest

from repro.quant import (
    MinMaxObserver,
    MovingAverageObserver,
    MSEObserver,
    PercentileObserver,
    QuantSpec,
)
from repro.quant.observers import make_observer
from repro.quant.qparams import quantization_error


SPEC = QuantSpec(bits=8, symmetric=False)


class TestMinMax:
    def test_tracks_extremes_across_batches(self):
        obs = MinMaxObserver(SPEC)
        obs.observe(np.array([0.0, 1.0]))
        obs.observe(np.array([-3.0, 0.5]))
        params = obs.compute()
        assert params.scale == pytest.approx(4.0 / 255, rel=1e-3)

    def test_per_channel(self):
        spec = QuantSpec(bits=8, symmetric=True, per_channel=True, axis=0)
        obs = MinMaxObserver(spec)
        obs.observe(np.array([[1.0, -1.0], [10.0, -10.0]]))
        params = obs.compute()
        assert params.scale.shape == (2,)
        assert params.scale[1] == pytest.approx(10 * params.scale[0])

    def test_compute_before_observe(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver(SPEC).compute()

    def test_reset(self):
        obs = MinMaxObserver(SPEC)
        obs.observe(np.array([100.0]))
        obs.reset()
        obs.observe(np.array([1.0, -1.0]))
        assert obs.compute().scale == pytest.approx(2.0 / 255, rel=1e-3)


class TestMovingAverage:
    def test_smooths_outlier_batch(self):
        minmax = MinMaxObserver(SPEC)
        ema = MovingAverageObserver(SPEC, momentum=0.9)
        rng = np.random.default_rng(0)
        for i in range(20):
            batch = rng.standard_normal(100)
            if i == 5:
                batch = batch * 100  # outlier batch
            minmax.observe(batch)
            ema.observe(batch)
        assert float(ema.compute().scale) < float(minmax.compute().scale)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            MovingAverageObserver(SPEC, momentum=1.0)


class TestPercentile:
    def test_clips_tails(self):
        obs = PercentileObserver(SPEC, percentile=99.0)
        rng = np.random.default_rng(0)
        data = rng.standard_normal(10000)
        data[0] = 1000.0  # extreme outlier
        obs.observe(data)
        assert float(obs.compute().scale) < 0.1  # outlier ignored

    def test_rejects_per_channel(self):
        spec = QuantSpec(bits=8, per_channel=True)
        with pytest.raises(ValueError):
            PercentileObserver(spec)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            PercentileObserver(SPEC, percentile=30.0)


class TestPercentileReservoir:
    def test_memory_bounded_past_budget(self):
        obs = PercentileObserver(SPEC, max_samples=1000)
        rng = np.random.default_rng(0)
        for _ in range(20):
            obs.observe(rng.standard_normal(700).astype(np.float32))
        assert obs._reservoir.size == 1000
        assert obs._filled == 1000
        assert obs._count == 14_000

    def test_uniform_inclusion_over_stream(self):
        """Every stream position must be (about) equally likely to stay:
        the reservoir mean over a drifting stream tracks the *stream*
        mean, not the head the seed's decaying acceptance favoured."""
        obs = PercentileObserver(SPEC, max_samples=2000, seed=1)
        stream_mean = np.mean(np.arange(100_000, dtype=np.float64))
        for start in range(0, 100_000, 5000):
            obs.observe(np.arange(start, start + 5000, dtype=np.float64))
        reservoir_mean = obs._reservoir[: obs._filled].mean()
        assert abs(reservoir_mean - stream_mean) / stream_mean < 0.05

    def test_range_tracks_late_stream_shift(self):
        # A true reservoir keeps sampling after the budget fills, so a
        # late distribution shift must move the computed range.
        obs = PercentileObserver(SPEC, percentile=99.0, max_samples=500,
                                 seed=2)
        rng = np.random.default_rng(3)
        obs.observe(rng.standard_normal(500).astype(np.float32))
        narrow = obs.compute()
        for _ in range(50):
            obs.observe(10.0 * rng.standard_normal(500).astype(np.float32))
        wide = obs.compute()
        assert float(wide.scale) > 2.0 * float(narrow.scale)

    def test_reset_clears_reservoir(self):
        obs = PercentileObserver(SPEC, max_samples=100)
        obs.observe(np.ones(50, np.float32))
        obs.reset()
        with pytest.raises(RuntimeError):
            obs.compute()


class TestMSEGrid:
    def test_shrink_grid_covers_documented_endpoints(self):
        # The grid must include both the full range (shrink 1.0) and the
        # documented 0.2 endpoint (the seed's 1 - 0.8*i/n stopped short).
        grid = np.linspace(1.0, 0.2, 20)
        assert grid[0] == 1.0
        assert grid[-1] == pytest.approx(0.2)

    def test_clean_uniform_keeps_full_range(self):
        # Without outliers, shrinking only adds clipping error, so the
        # argmin must sit at shrink = 1.0 — full min/max range.
        obs_mse = MSEObserver(SPEC, seed=0)
        obs_minmax = MinMaxObserver(SPEC)
        x = np.linspace(-1.0, 1.0, 4096).astype(np.float32)
        obs_mse.observe(x)
        obs_minmax.observe(x)
        assert float(obs_mse.compute().scale) == \
            pytest.approx(float(obs_minmax.compute().scale))


class TestMSE:
    def test_beats_minmax_on_heavy_tails(self):
        rng = np.random.default_rng(0)
        data = rng.standard_t(df=2, size=20000).astype(np.float32)
        minmax = MinMaxObserver(SPEC)
        mse = MSEObserver(SPEC)
        minmax.observe(data)
        mse.observe(data)
        assert (quantization_error(data, mse.compute())
                <= quantization_error(data, minmax.compute()))

    def test_rejects_per_channel(self):
        with pytest.raises(ValueError):
            MSEObserver(QuantSpec(bits=8, per_channel=True))


class TestFactory:
    @pytest.mark.parametrize("kind", ["minmax", "moving_average",
                                      "percentile", "mse"])
    def test_known_kinds(self, kind):
        obs = make_observer(kind, SPEC)
        obs.observe(np.array([1.0, -1.0]))
        assert obs.compute().scale > 0

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_observer("magic", SPEC)
