"""Calibration observers."""

import numpy as np
import pytest

from repro.quant import (
    MinMaxObserver,
    MovingAverageObserver,
    MSEObserver,
    PercentileObserver,
    QuantSpec,
)
from repro.quant.observers import make_observer
from repro.quant.qparams import quantization_error


SPEC = QuantSpec(bits=8, symmetric=False)


class TestMinMax:
    def test_tracks_extremes_across_batches(self):
        obs = MinMaxObserver(SPEC)
        obs.observe(np.array([0.0, 1.0]))
        obs.observe(np.array([-3.0, 0.5]))
        params = obs.compute()
        assert params.scale == pytest.approx(4.0 / 255, rel=1e-3)

    def test_per_channel(self):
        spec = QuantSpec(bits=8, symmetric=True, per_channel=True, axis=0)
        obs = MinMaxObserver(spec)
        obs.observe(np.array([[1.0, -1.0], [10.0, -10.0]]))
        params = obs.compute()
        assert params.scale.shape == (2,)
        assert params.scale[1] == pytest.approx(10 * params.scale[0])

    def test_compute_before_observe(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver(SPEC).compute()

    def test_reset(self):
        obs = MinMaxObserver(SPEC)
        obs.observe(np.array([100.0]))
        obs.reset()
        obs.observe(np.array([1.0, -1.0]))
        assert obs.compute().scale == pytest.approx(2.0 / 255, rel=1e-3)


class TestMovingAverage:
    def test_smooths_outlier_batch(self):
        minmax = MinMaxObserver(SPEC)
        ema = MovingAverageObserver(SPEC, momentum=0.9)
        rng = np.random.default_rng(0)
        for i in range(20):
            batch = rng.standard_normal(100)
            if i == 5:
                batch = batch * 100  # outlier batch
            minmax.observe(batch)
            ema.observe(batch)
        assert float(ema.compute().scale) < float(minmax.compute().scale)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            MovingAverageObserver(SPEC, momentum=1.0)


class TestPercentile:
    def test_clips_tails(self):
        obs = PercentileObserver(SPEC, percentile=99.0)
        rng = np.random.default_rng(0)
        data = rng.standard_normal(10000)
        data[0] = 1000.0  # extreme outlier
        obs.observe(data)
        assert float(obs.compute().scale) < 0.1  # outlier ignored

    def test_rejects_per_channel(self):
        spec = QuantSpec(bits=8, per_channel=True)
        with pytest.raises(ValueError):
            PercentileObserver(spec)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            PercentileObserver(SPEC, percentile=30.0)


class TestMSE:
    def test_beats_minmax_on_heavy_tails(self):
        rng = np.random.default_rng(0)
        data = rng.standard_t(df=2, size=20000).astype(np.float32)
        minmax = MinMaxObserver(SPEC)
        mse = MSEObserver(SPEC)
        minmax.observe(data)
        mse.observe(data)
        assert (quantization_error(data, mse.compute())
                <= quantization_error(data, minmax.compute()))

    def test_rejects_per_channel(self):
        with pytest.raises(ValueError):
            MSEObserver(QuantSpec(bits=8, per_channel=True))


class TestFactory:
    @pytest.mark.parametrize("kind", ["minmax", "moving_average",
                                      "percentile", "mse"])
    def test_known_kinds(self, kind):
        obs = make_observer(kind, SPEC)
        obs.observe(np.array([1.0, -1.0]))
        assert obs.compute().scale > 0

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_observer("magic", SPEC)
