"""Optimizers and schedules: convergence on known problems, invariants."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    SGD,
    Adam,
    AdamW,
    ConstantSchedule,
    CosineSchedule,
    StepSchedule,
    WarmupCosineSchedule,
    clip_grad_norm,
)
from repro.tensor import Tensor


def quadratic_step(param, optimizer, target):
    """One gradient step on 0.5*||p - target||²."""
    diff = param - Tensor(target)
    loss = (diff * diff).sum() * 0.5
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 1.0], np.float32)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(p, opt, target)
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_momentum_faster_than_plain(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(50):
                quadratic_step(p, opt, np.zeros(1, np.float32))
            return abs(float(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        # zero data gradient: decay alone should shrink the weight
        p.grad = np.zeros(1, np.float32)
        opt.step()
        assert abs(float(p.data[0])) < 1.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        assert float(p.data[0]) == 1.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 1.0], np.float32)
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            quadratic_step(p, opt, target)
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_bias_correction_first_step(self):
        """First Adam step magnitude ≈ lr regardless of gradient scale."""
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale], np.float32)
            opt.step()
            assert abs(abs(float(p.data[0])) - 0.01) < 1e-3

    def test_adamw_decay_decoupled(self):
        p_adamw = Parameter(np.array([1.0]))
        opt = AdamW([p_adamw], lr=0.1, weight_decay=0.5)
        p_adamw.grad = np.zeros(1, np.float32)
        opt.step()
        # decoupled decay multiplies by (1 - lr*wd) = 0.95
        assert float(p_adamw.data[0]) == pytest.approx(0.95, rel=1e-5)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.1, 0.1], np.float32)
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(np.sqrt(0.03), rel=1e-5)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0], np.float32)  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_handles_missing_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s(0) == s(1000) == 0.5

    def test_step_schedule(self):
        s = StepSchedule(1.0, step_size=10, gamma=0.1)
        assert s(0) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        s = CosineSchedule(1.0, total_steps=100, min_lr=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(50) == pytest.approx(0.55, abs=1e-6)

    def test_cosine_monotone_decreasing(self):
        s = CosineSchedule(1.0, total_steps=50)
        values = [s(i) for i in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_then_decay(self):
        s = WarmupCosineSchedule(1.0, total_steps=100, warmup_steps=10)
        warm = [s(i) for i in range(10)]
        assert all(a < b for a, b in zip(warm, warm[1:]))  # increasing
        assert s(9) == pytest.approx(1.0)
        assert s(99) < 0.01

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            WarmupCosineSchedule(1.0, total_steps=10, warmup_steps=10)

    def test_apply_sets_lr(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        CosineSchedule(1.0, 10).apply(opt, 10)
        assert opt.lr == pytest.approx(0.0)
