"""Streaming subsystem: sequences, tracker hysteresis, metrics."""

import numpy as np
import pytest

from repro.data import SceneConfig, get_task
from repro.stream import (
    SceneSequence,
    SequenceConfig,
    StreamingDetector,
    TrackerConfig,
    evaluate_stream,
)
from repro.stream.tracker import Track


class TestSequence:
    def test_deterministic(self):
        a = SceneSequence(seed=3)
        b = SceneSequence(seed=3)
        fa, fb = a.step(), b.step()
        np.testing.assert_array_equal(fa.scene.image, fb.scene.image)
        assert fa.object_ids == fb.object_ids

    def test_frame_indices_increase(self):
        seq = SceneSequence(seed=0)
        indices = [state.index for state in seq.frames(5)]
        assert indices == [0, 1, 2, 3, 4]

    def test_object_ids_align_with_objects(self):
        seq = SceneSequence(seed=1)
        state = seq.step()
        assert len(state.object_ids) == len(state.scene.objects)
        assert len(set(state.object_ids)) == len(state.object_ids)

    def test_persistence_across_frames(self):
        """With zero birth/death, the population is frozen."""
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=2)
        first = seq.step()
        later = seq.step()
        assert set(first.object_ids) == set(later.object_ids)
        assert later.births == [] and later.deaths == []

    def test_high_death_rate_clears_scene(self):
        config = SequenceConfig(birth_rate=0.0, death_rate=1.0)
        seq = SceneSequence(config, seed=4)
        state = seq.step()
        assert state.scene.objects == []

    def test_births_fill_free_cells(self):
        config = SequenceConfig(birth_rate=1.0, death_rate=0.0)
        seq = SceneSequence(config, seed=5)
        state = seq.step()
        assert len(state.scene.objects) == config.scene.grid ** 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SequenceConfig(birth_rate=1.5)


class TestTrackerConfig:
    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            TrackerConfig(on_threshold=0.3, off_threshold=0.5)

    def test_smoothing_range(self):
        with pytest.raises(ValueError):
            TrackerConfig(smoothing=1.0)


class TestStreamingDetector:
    @pytest.fixture()
    def detector(self, student_vit):
        return StreamingDetector(student_vit, matcher=None,
                                 config=TrackerConfig(on_threshold=0.2,
                                                      off_threshold=0.1))

    def test_update_returns_tracks(self, detector):
        seq = SceneSequence(seed=6)
        tracks = detector.update(seq.step().scene)
        assert all(isinstance(t, Track) for t in tracks)
        for t in tracks:
            assert 0.0 <= t.score <= 1.0

    def test_track_ids_stable_on_static_scene(self, detector):
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=7)
        first = {t.cell: t.track_id for t in detector.update(seq.step().scene)}
        second = {t.cell: t.track_id for t in detector.update(seq.step().scene)}
        for cell, track_id in second.items():
            if cell in first:
                assert first[cell] == track_id

    def test_reset(self, detector):
        seq = SceneSequence(seed=8)
        detector.update(seq.step().scene)
        detector.reset()
        assert detector.active_tracks() == []
        assert detector.all_tracks == []

    def test_hysteresis_keeps_track_through_dip(self, student_vit):
        """A smoothed score dipping between off and on thresholds must
        not drop the track."""
        detector = StreamingDetector(student_vit, matcher=None,
                                     config=TrackerConfig(
                                         smoothing=0.0, on_threshold=0.2,
                                         off_threshold=0.05,
                                         max_missed_frames=2))
        # drive with synthetic scores by monkeypatching the scorer
        cells = [(0, 0)]
        scores = iter([0.5, 0.1, 0.1, 0.5])
        detector._cell_scores = lambda scene: {cells[0]: next(scores)}
        seq = SceneSequence(seed=9)
        scene = seq.step().scene
        for _ in range(4):
            tracks = detector.update(scene)
        assert len(tracks) == 1 and tracks[0].active


class TestEvaluateStream:
    def test_metrics_contract(self, student_vit):
        task = get_task("roadside_hazards")
        detector = StreamingDetector(student_vit, matcher=None)
        seq = SceneSequence(seed=10)
        metrics = evaluate_stream(detector, seq, task, num_frames=5)
        assert 0.0 <= metrics.frame_accuracy <= 1.0
        assert 0.0 <= metrics.flicker_rate <= 1.0
        assert 0.0 <= metrics.detected_fraction <= 1.0
        assert metrics.frames == 5
        assert set(metrics.as_dict()) == {
            "frame_accuracy", "mean_detection_latency", "detected_fraction",
            "flicker_rate", "frames",
        }
