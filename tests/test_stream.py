"""Streaming subsystem: sequences, tracker hysteresis, metrics."""

import numpy as np
import pytest

from repro.data import SceneConfig, get_task
from repro.stream import (
    SceneSequence,
    SequenceConfig,
    StreamingDetector,
    TrackerConfig,
    evaluate_stream,
)
from repro.stream.tracker import Track


class TestSequence:
    def test_deterministic(self):
        a = SceneSequence(seed=3)
        b = SceneSequence(seed=3)
        fa, fb = a.step(), b.step()
        np.testing.assert_array_equal(fa.scene.image, fb.scene.image)
        assert fa.object_ids == fb.object_ids

    def test_frame_indices_increase(self):
        seq = SceneSequence(seed=0)
        indices = [state.index for state in seq.frames(5)]
        assert indices == [0, 1, 2, 3, 4]

    def test_object_ids_align_with_objects(self):
        seq = SceneSequence(seed=1)
        state = seq.step()
        assert len(state.object_ids) == len(state.scene.objects)
        assert len(set(state.object_ids)) == len(state.object_ids)

    def test_persistence_across_frames(self):
        """With zero birth/death, the population is frozen."""
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=2)
        first = seq.step()
        later = seq.step()
        assert set(first.object_ids) == set(later.object_ids)
        assert later.births == [] and later.deaths == []

    def test_high_death_rate_clears_scene(self):
        config = SequenceConfig(birth_rate=0.0, death_rate=1.0)
        seq = SceneSequence(config, seed=4)
        state = seq.step()
        assert state.scene.objects == []

    def test_births_fill_free_cells(self):
        config = SequenceConfig(birth_rate=1.0, death_rate=0.0)
        seq = SceneSequence(config, seed=5)
        state = seq.step()
        assert len(state.scene.objects) == config.scene.grid ** 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SequenceConfig(birth_rate=1.5)


class TestTrackerConfig:
    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            TrackerConfig(on_threshold=0.3, off_threshold=0.5)

    def test_smoothing_range(self):
        with pytest.raises(ValueError):
            TrackerConfig(smoothing=1.0)


class TestStreamingDetector:
    @pytest.fixture()
    def detector(self, student_vit):
        return StreamingDetector(student_vit, matcher=None,
                                 config=TrackerConfig(on_threshold=0.2,
                                                      off_threshold=0.1))

    def test_update_returns_tracks(self, detector):
        seq = SceneSequence(seed=6)
        tracks = detector.update(seq.step().scene)
        assert all(isinstance(t, Track) for t in tracks)
        for t in tracks:
            assert 0.0 <= t.score <= 1.0

    def test_track_ids_stable_on_static_scene(self, detector):
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=7)
        first = {t.cell: t.track_id for t in detector.update(seq.step().scene)}
        second = {t.cell: t.track_id for t in detector.update(seq.step().scene)}
        for cell, track_id in second.items():
            if cell in first:
                assert first[cell] == track_id

    def test_reset(self, detector):
        seq = SceneSequence(seed=8)
        detector.update(seq.step().scene)
        detector.reset()
        assert detector.active_tracks() == []
        assert detector.all_tracks == []

    def test_hysteresis_keeps_track_through_dip(self, student_vit):
        """A smoothed score dipping between off and on thresholds must
        not drop the track."""
        detector = StreamingDetector(student_vit, matcher=None,
                                     config=TrackerConfig(
                                         smoothing=0.0, on_threshold=0.2,
                                         off_threshold=0.05,
                                         max_missed_frames=2))
        # drive with synthetic scores by monkeypatching the scorer
        cells = [(0, 0)]
        scores = iter([0.5, 0.1, 0.1, 0.5])
        detector._cell_scores = lambda scene: {cells[0]: next(scores)}
        seq = SceneSequence(seed=9)
        scene = seq.step().scene
        for _ in range(4):
            tracks = detector.update(scene)
        assert len(tracks) == 1 and tracks[0].active


class TestEvaluateStream:
    def test_metrics_contract(self, student_vit):
        task = get_task("roadside_hazards")
        detector = StreamingDetector(student_vit, matcher=None)
        seq = SceneSequence(seed=10)
        metrics = evaluate_stream(detector, seq, task, num_frames=5)
        assert 0.0 <= metrics.frame_accuracy <= 1.0
        assert 0.0 <= metrics.flicker_rate <= 1.0
        assert 0.0 <= metrics.detected_fraction <= 1.0
        assert metrics.frames == 5
        assert set(metrics.as_dict()) == {
            "frame_accuracy", "mean_detection_latency", "detected_fraction",
            "flicker_rate", "frames",
        }


class _ScriptedDetector:
    """Minimal detector stub: fires a fixed cell set every frame."""

    def __init__(self, cells):
        self._cells = list(cells)
        self._next_id = 0

    def update(self, scene):
        tracks = [Track(track_id=i, cell=cell, first_frame=0, last_frame=0,
                        score=1.0)
                  for i, cell in enumerate(self._cells)]
        return tracks


class _ScriptedFrames:
    def __init__(self, states):
        self._states = list(states)

    def frames(self, count):
        yield from self._states[:count]


class TestStreamFixRegressions:
    """One regression test per bug fixed in this PR (see ISSUE 6)."""

    # -- fix 1: zero-cell scenes must not crash ------------------------
    def test_update_on_zero_cell_scene(self, student_vit):
        from repro.data import SceneGenerator

        detector = StreamingDetector(student_vit, matcher=None)
        empty = SceneGenerator(SceneConfig(grid=0), seed=0).generate()
        assert detector.update(empty) == []

    def test_update_many_with_zero_cell_frames(self, student_vit):
        from repro.data import SceneGenerator

        scenes = [
            SceneGenerator(SceneConfig(grid=2), seed=1).generate(),
            SceneGenerator(SceneConfig(grid=0), seed=2).generate(),
            SceneGenerator(SceneConfig(grid=1), seed=3).generate(),
        ]
        config = TrackerConfig(on_threshold=0.05, off_threshold=0.02)
        fused = StreamingDetector(student_vit, matcher=None,
                                  config=config).update_many(scenes)
        sequential_detector = StreamingDetector(student_vit, matcher=None,
                                                config=config)
        sequential = [
            [Track(**vars(t)) for t in sequential_detector.update(scene)]
            for scene in scenes
        ]
        assert len(fused) == 3
        for fused_frame, seq_frame in zip(fused, sequential):
            assert ([(t.track_id, t.cell, t.last_frame, t.missed, t.score)
                     for t in fused_frame]
                    == [(t.track_id, t.cell, t.last_frame, t.missed, t.score)
                        for t in seq_frame])

    def test_all_zero_cell_chunk(self, student_vit):
        from repro.data import SceneGenerator

        empty = SceneGenerator(SceneConfig(grid=0), seed=4).generate()
        detector = StreamingDetector(student_vit, matcher=None)
        assert detector.update_many([empty, empty]) == [[], []]

    # -- fix 2: unobserved cells must decay and age --------------------
    def test_unobserved_track_ages_out(self, student_vit):
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(smoothing=0.5, on_threshold=0.4,
                                 off_threshold=0.2, max_missed_frames=2))
        cell = (0, 0)
        tracks = detector._advance({cell: 0.9})
        assert len(tracks) == 1 and tracks[0].missed == 0
        # the cell is never observed again: the track must age out
        for expected_missed in (1, 2):
            tracks = detector._advance({})
            assert len(tracks) == 1
            assert tracks[0].missed == expected_missed
            assert tracks[0].last_frame == 0
        assert detector._advance({}) == []        # missed=3 > budget: dead

    def test_unobserved_cell_ema_decays(self, student_vit):
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(smoothing=0.5, on_threshold=0.95,
                                 off_threshold=0.9))
        cell = (1, 1)
        detector._advance({cell: 0.8})
        assert detector._ema[cell] == pytest.approx(0.8)
        detector._advance({})
        assert detector._ema[cell] == pytest.approx(0.4)

    def test_no_birth_from_stale_ema(self, student_vit):
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(smoothing=0.0, on_threshold=0.3,
                                 off_threshold=0.1))
        # high smoothed score left over from an earlier frame
        detector._ema[(2, 2)] = 0.99
        assert detector._advance({}) == []

    # -- fix 3: update_many snapshots must be frame-local copies -------
    def test_update_many_snapshots_are_isolated(self, student_vit):
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=12)
        scenes = [seq.step().scene for _ in range(3)]
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(on_threshold=0.05, off_threshold=0.02))
        snapshots = detector.update_many(scenes)
        first, last = snapshots[0], snapshots[-1]
        assert first, "expected tracks on frame 0 at this threshold"
        for track in first:
            assert track.last_frame == 0      # pre-fix: rewritten to 2
        shared = {id(t) for t in first} & {id(t) for t in last}
        assert not shared

    def test_update_many_matches_repeated_update(self, student_vit):
        seq = SceneSequence(SequenceConfig(), seed=13)
        scenes = [seq.step().scene for _ in range(3)]
        config = TrackerConfig(on_threshold=0.05, off_threshold=0.02)
        fused = StreamingDetector(student_vit, matcher=None,
                                  config=config).update_many(scenes)
        sequential_detector = StreamingDetector(student_vit, matcher=None,
                                                config=config)
        for scene, fused_frame in zip(scenes, fused):
            expected = sequential_detector.update(scene)
            assert ([(t.track_id, t.cell, t.first_frame, t.last_frame,
                      t.missed, t.active) for t in fused_frame]
                    == [(t.track_id, t.cell, t.first_frame, t.last_frame,
                         t.missed, t.active) for t in expected])
            for fused_track, seq_track in zip(fused_frame, expected):
                assert fused_track.score == pytest.approx(seq_track.score,
                                                          abs=1e-5)

    # -- fix 4: evaluate_stream must not credit post-death detections --
    @staticmethod
    def _one_object_frames(deaths_on_frame0):
        from repro.data.ontology import sample_profile
        from repro.data.scenes import ObjectInstance, Scene
        from repro.stream.sequence import FrameState

        rng = np.random.default_rng(0)
        profile = sample_profile(rng).replace(
            color="red", shape="square", texture="solid")
        scene = Scene(
            image=np.zeros((3, 32, 32), dtype=np.float32),
            objects=[ObjectInstance(profile=profile, bbox=(0, 0, 32, 32),
                                    category=None, cell=(0, 0))],
            grid=1, cell_size=32)
        return [FrameState(index=0, scene=scene, object_ids=[7], births=[7],
                           deaths=([7] if deaths_on_frame0 else []))]

    def test_detection_after_death_not_credited(self):
        task = get_task("stop_control")
        detector = _ScriptedDetector([(0, 0)])
        states = self._one_object_frames(deaths_on_frame0=True)
        metrics = evaluate_stream(detector, _ScriptedFrames(states), task,
                                  num_frames=1)
        assert metrics.detected_fraction == 0.0
        assert np.isnan(metrics.mean_detection_latency)

    def test_detection_while_alive_still_credited(self):
        task = get_task("stop_control")
        detector = _ScriptedDetector([(0, 0)])
        states = self._one_object_frames(deaths_on_frame0=False)
        metrics = evaluate_stream(detector, _ScriptedFrames(states), task,
                                  num_frames=1)
        assert metrics.detected_fraction == 1.0
        assert metrics.mean_detection_latency == 0.0
