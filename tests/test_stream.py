"""Streaming subsystem: sequences, tracker hysteresis, metrics, gating."""

import dataclasses

import numpy as np
import pytest

from repro.data import SceneConfig, get_task
from repro.stream import (
    SceneSequence,
    SequenceConfig,
    StreamingDetector,
    TrackerConfig,
    evaluate_stream,
)
from repro.stream.tracker import Track


class TestSequence:
    def test_deterministic(self):
        a = SceneSequence(seed=3)
        b = SceneSequence(seed=3)
        fa, fb = a.step(), b.step()
        np.testing.assert_array_equal(fa.scene.image, fb.scene.image)
        assert fa.object_ids == fb.object_ids

    def test_frame_indices_increase(self):
        seq = SceneSequence(seed=0)
        indices = [state.index for state in seq.frames(5)]
        assert indices == [0, 1, 2, 3, 4]

    def test_object_ids_align_with_objects(self):
        seq = SceneSequence(seed=1)
        state = seq.step()
        assert len(state.object_ids) == len(state.scene.objects)
        assert len(set(state.object_ids)) == len(state.object_ids)

    def test_persistence_across_frames(self):
        """With zero birth/death, the population is frozen."""
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=2)
        first = seq.step()
        later = seq.step()
        assert set(first.object_ids) == set(later.object_ids)
        assert later.births == [] and later.deaths == []

    def test_high_death_rate_clears_scene(self):
        config = SequenceConfig(birth_rate=0.0, death_rate=1.0)
        seq = SceneSequence(config, seed=4)
        state = seq.step()
        assert state.scene.objects == []

    def test_births_fill_free_cells(self):
        config = SequenceConfig(birth_rate=1.0, death_rate=0.0)
        seq = SceneSequence(config, seed=5)
        state = seq.step()
        assert len(state.scene.objects) == config.scene.grid ** 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SequenceConfig(birth_rate=1.5)


class TestTrackerConfig:
    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            TrackerConfig(on_threshold=0.3, off_threshold=0.5)

    def test_smoothing_range(self):
        with pytest.raises(ValueError):
            TrackerConfig(smoothing=1.0)


class TestStreamingDetector:
    @pytest.fixture()
    def detector(self, student_vit):
        return StreamingDetector(student_vit, matcher=None,
                                 config=TrackerConfig(on_threshold=0.2,
                                                      off_threshold=0.1))

    def test_update_returns_tracks(self, detector):
        seq = SceneSequence(seed=6)
        tracks = detector.update(seq.step().scene)
        assert all(isinstance(t, Track) for t in tracks)
        for t in tracks:
            assert 0.0 <= t.score <= 1.0

    def test_track_ids_stable_on_static_scene(self, detector):
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=7)
        first = {t.cell: t.track_id for t in detector.update(seq.step().scene)}
        second = {t.cell: t.track_id for t in detector.update(seq.step().scene)}
        for cell, track_id in second.items():
            if cell in first:
                assert first[cell] == track_id

    def test_reset(self, detector):
        seq = SceneSequence(seed=8)
        detector.update(seq.step().scene)
        detector.reset()
        assert detector.active_tracks() == []
        assert detector.all_tracks == []

    def test_hysteresis_keeps_track_through_dip(self, student_vit):
        """A smoothed score dipping between off and on thresholds must
        not drop the track."""
        detector = StreamingDetector(student_vit, matcher=None,
                                     config=TrackerConfig(
                                         smoothing=0.0, on_threshold=0.2,
                                         off_threshold=0.05,
                                         max_missed_frames=2))
        # drive with synthetic scores by monkeypatching the scorer
        cells = [(0, 0)]
        scores = iter([0.5, 0.1, 0.1, 0.5])
        detector._cell_scores = lambda scene: {cells[0]: next(scores)}
        seq = SceneSequence(seed=9)
        scene = seq.step().scene
        for _ in range(4):
            tracks = detector.update(scene)
        assert len(tracks) == 1 and tracks[0].active


class TestEvaluateStream:
    def test_metrics_contract(self, student_vit):
        task = get_task("roadside_hazards")
        detector = StreamingDetector(student_vit, matcher=None)
        seq = SceneSequence(seed=10)
        metrics = evaluate_stream(detector, seq, task, num_frames=5)
        assert 0.0 <= metrics.frame_accuracy <= 1.0
        assert 0.0 <= metrics.flicker_rate <= 1.0
        assert 0.0 <= metrics.detected_fraction <= 1.0
        assert metrics.frames == 5
        assert set(metrics.as_dict()) == {
            "frame_accuracy", "mean_detection_latency", "detected_fraction",
            "flicker_rate", "frames",
        }


class _ScriptedDetector:
    """Minimal detector stub: fires a fixed cell set every frame."""

    def __init__(self, cells):
        self._cells = list(cells)
        self._next_id = 0

    def update(self, scene):
        tracks = [Track(track_id=i, cell=cell, first_frame=0, last_frame=0,
                        score=1.0)
                  for i, cell in enumerate(self._cells)]
        return tracks


class _ScriptedFrames:
    def __init__(self, states):
        self._states = list(states)

    def frames(self, count):
        yield from self._states[:count]


class TestStreamFixRegressions:
    """One regression test per bug fixed in this PR (see ISSUE 6)."""

    # -- fix 1: zero-cell scenes must not crash ------------------------
    def test_update_on_zero_cell_scene(self, student_vit):
        from repro.data import SceneGenerator

        detector = StreamingDetector(student_vit, matcher=None)
        empty = SceneGenerator(SceneConfig(grid=0), seed=0).generate()
        assert detector.update(empty) == []

    def test_update_many_with_zero_cell_frames(self, student_vit):
        from repro.data import SceneGenerator

        scenes = [
            SceneGenerator(SceneConfig(grid=2), seed=1).generate(),
            SceneGenerator(SceneConfig(grid=0), seed=2).generate(),
            SceneGenerator(SceneConfig(grid=1), seed=3).generate(),
        ]
        config = TrackerConfig(on_threshold=0.05, off_threshold=0.02)
        fused = StreamingDetector(student_vit, matcher=None,
                                  config=config).update_many(scenes)
        sequential_detector = StreamingDetector(student_vit, matcher=None,
                                                config=config)
        sequential = [
            [Track(**vars(t)) for t in sequential_detector.update(scene)]
            for scene in scenes
        ]
        assert len(fused) == 3
        for fused_frame, seq_frame in zip(fused, sequential):
            assert ([(t.track_id, t.cell, t.last_frame, t.missed, t.score)
                     for t in fused_frame]
                    == [(t.track_id, t.cell, t.last_frame, t.missed, t.score)
                        for t in seq_frame])

    def test_all_zero_cell_chunk(self, student_vit):
        from repro.data import SceneGenerator

        empty = SceneGenerator(SceneConfig(grid=0), seed=4).generate()
        detector = StreamingDetector(student_vit, matcher=None)
        assert detector.update_many([empty, empty]) == [[], []]

    # -- fix 2: unobserved cells must decay and age --------------------
    def test_unobserved_track_ages_out(self, student_vit):
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(smoothing=0.5, on_threshold=0.4,
                                 off_threshold=0.2, max_missed_frames=2))
        cell = (0, 0)
        tracks = detector._advance({cell: 0.9})
        assert len(tracks) == 1 and tracks[0].missed == 0
        # the cell is never observed again: the track must age out
        for expected_missed in (1, 2):
            tracks = detector._advance({})
            assert len(tracks) == 1
            assert tracks[0].missed == expected_missed
            assert tracks[0].last_frame == 0
        assert detector._advance({}) == []        # missed=3 > budget: dead

    def test_unobserved_cell_ema_decays(self, student_vit):
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(smoothing=0.5, on_threshold=0.95,
                                 off_threshold=0.9))
        cell = (1, 1)
        detector._advance({cell: 0.8})
        assert detector._ema[cell] == pytest.approx(0.8)
        detector._advance({})
        assert detector._ema[cell] == pytest.approx(0.4)

    def test_no_birth_from_stale_ema(self, student_vit):
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(smoothing=0.0, on_threshold=0.3,
                                 off_threshold=0.1))
        # high smoothed score left over from an earlier frame
        detector._ema[(2, 2)] = 0.99
        assert detector._advance({}) == []

    # -- fix 3: update_many snapshots must be frame-local copies -------
    def test_update_many_snapshots_are_isolated(self, student_vit):
        config = SequenceConfig(birth_rate=0.0, death_rate=0.0)
        seq = SceneSequence(config, seed=12)
        scenes = [seq.step().scene for _ in range(3)]
        detector = StreamingDetector(
            student_vit, matcher=None,
            config=TrackerConfig(on_threshold=0.05, off_threshold=0.02))
        snapshots = detector.update_many(scenes)
        first, last = snapshots[0], snapshots[-1]
        assert first, "expected tracks on frame 0 at this threshold"
        for track in first:
            assert track.last_frame == 0      # pre-fix: rewritten to 2
        shared = {id(t) for t in first} & {id(t) for t in last}
        assert not shared

    def test_update_many_matches_repeated_update(self, student_vit):
        seq = SceneSequence(SequenceConfig(), seed=13)
        scenes = [seq.step().scene for _ in range(3)]
        config = TrackerConfig(on_threshold=0.05, off_threshold=0.02)
        fused = StreamingDetector(student_vit, matcher=None,
                                  config=config).update_many(scenes)
        sequential_detector = StreamingDetector(student_vit, matcher=None,
                                                config=config)
        for scene, fused_frame in zip(scenes, fused):
            expected = sequential_detector.update(scene)
            assert ([(t.track_id, t.cell, t.first_frame, t.last_frame,
                      t.missed, t.active) for t in fused_frame]
                    == [(t.track_id, t.cell, t.first_frame, t.last_frame,
                         t.missed, t.active) for t in expected])
            for fused_track, seq_track in zip(fused_frame, expected):
                assert fused_track.score == pytest.approx(seq_track.score,
                                                          abs=1e-5)

    # -- fix 4: evaluate_stream must not credit post-death detections --
    @staticmethod
    def _one_object_frames(deaths_on_frame0):
        from repro.data.ontology import sample_profile
        from repro.data.scenes import ObjectInstance, Scene
        from repro.stream.sequence import FrameState

        rng = np.random.default_rng(0)
        profile = sample_profile(rng).replace(
            color="red", shape="square", texture="solid")
        scene = Scene(
            image=np.zeros((3, 32, 32), dtype=np.float32),
            objects=[ObjectInstance(profile=profile, bbox=(0, 0, 32, 32),
                                    category=None, cell=(0, 0))],
            grid=1, cell_size=32)
        return [FrameState(index=0, scene=scene, object_ids=[7], births=[7],
                           deaths=([7] if deaths_on_frame0 else []))]

    def test_detection_after_death_not_credited(self):
        task = get_task("stop_control")
        detector = _ScriptedDetector([(0, 0)])
        states = self._one_object_frames(deaths_on_frame0=True)
        metrics = evaluate_stream(detector, _ScriptedFrames(states), task,
                                  num_frames=1)
        assert metrics.detected_fraction == 0.0
        assert np.isnan(metrics.mean_detection_latency)

    def test_detection_while_alive_still_credited(self):
        task = get_task("stop_control")
        detector = _ScriptedDetector([(0, 0)])
        states = self._one_object_frames(deaths_on_frame0=False)
        metrics = evaluate_stream(detector, _ScriptedFrames(states), task,
                                  num_frames=1)
        assert metrics.detected_fraction == 1.0
        assert metrics.mean_detection_latency == 0.0


# ----------------------------------------------------------------------
# frame-delta gating (incremental detection)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fuzz_model_pair():
    """Tiny deterministic float/quantized pair (16x16 cell windows)."""
    from repro.fuzz.runner import build_model_pair
    from repro.fuzz.scenario import ModelSpec

    return build_model_pair(ModelSpec())


def _gate_scenes(seed, num_frames=6, grid=3, motion_rate=0.25,
                 birth_rate=0.06, death_rate=0.04):
    """Frames at the fuzz models' 16px cell size, incremental rendering."""
    config = SequenceConfig(
        scene=SceneConfig(grid=grid, cell_size=16),
        birth_rate=birth_rate, death_rate=death_rate,
        motion_rate=motion_rate)
    return [state.scene
            for state in SceneSequence(config, seed=seed).frames(num_frames)]


def _run(model, scenes, config, matcher=None):
    detector = StreamingDetector(model, matcher=matcher, config=config)
    snapshots = [[dataclasses.replace(t) for t in detector.update(scene)]
                 for scene in scenes]
    return snapshots, detector


def _track_tuples(snapshots):
    return [[(t.track_id, t.cell, t.first_frame, t.last_frame, t.active,
              t.missed) for t in frame] for frame in snapshots]


def _scores(snapshots):
    return [[t.score for t in frame] for frame in snapshots]


class TestDeltaGating:
    """Property: gated == full recompute (the correctness contract)."""

    BASE = dict(on_threshold=0.2, off_threshold=0.1)

    @pytest.mark.parametrize("tracker_kwargs,sequence_kwargs", [
        # default smoothing/hysteresis, mostly-static feed
        (dict(), dict(motion_rate=0.05)),
        # no smoothing, busy feed
        (dict(smoothing=0.0), dict(motion_rate=0.5)),
        # heavy smoothing + tight hysteresis + periodic refresh
        (dict(smoothing=0.8, on_threshold=0.3, off_threshold=0.28,
              refresh_every=2), dict(motion_rate=0.25)),
        # birth/death churn with aggressive aging
        (dict(max_missed_frames=0, refresh_every=4),
         dict(motion_rate=0.1, birth_rate=0.5, death_rate=0.5)),
        # fully static after births: every cell should gate
        (dict(), dict(motion_rate=0.0, birth_rate=0.0, death_rate=0.0)),
    ])
    def test_gated_bit_equal_to_full_quantized(self, fuzz_model_pair,
                                               tracker_kwargs,
                                               sequence_kwargs):
        _, quantized = fuzz_model_pair
        kwargs = {**self.BASE, **tracker_kwargs}
        scenes = _gate_scenes(seed=21, **sequence_kwargs)
        full, _ = _run(quantized, scenes,
                       TrackerConfig(delta_gate=False, **kwargs))
        gated, detector = _run(quantized, scenes,
                               TrackerConfig(delta_gate=True, **kwargs))
        assert _track_tuples(gated) == _track_tuples(full)
        assert _scores(gated) == _scores(full)  # bit-exact, not approx
        stats = detector.gate_stats
        assert stats.frames == len(scenes)
        assert stats.skipped + stats.recomputed > 0

    def test_gated_close_to_full_float(self, fuzz_model_pair):
        """Float path: batch-shape-dependent GEMM tiling allows tiny
        drift, so tracks must match exactly and scores to 1e-5."""
        float_model, _ = fuzz_model_pair
        config = dict(self.BASE)
        scenes = _gate_scenes(seed=22, motion_rate=0.2)
        full, _ = _run(float_model, scenes,
                       TrackerConfig(delta_gate=False, **config))
        gated, _ = _run(float_model, scenes,
                        TrackerConfig(delta_gate=True, **config))
        assert _track_tuples(gated) == _track_tuples(full)
        for gated_frame, full_frame in zip(_scores(gated), _scores(full)):
            assert gated_frame == pytest.approx(full_frame, abs=1e-5)

    def test_gated_with_zero_cell_frames(self, fuzz_model_pair):
        """A zero-cell frame mid-stream must not corrupt the cache."""
        from repro.data import SceneGenerator

        _, quantized = fuzz_model_pair
        busy = _gate_scenes(seed=23, num_frames=2, motion_rate=0.0,
                            birth_rate=0.0, death_rate=0.0)
        empty = SceneGenerator(SceneConfig(grid=0, cell_size=16),
                               seed=5).generate()
        scenes = [busy[0], empty, busy[1]]
        kwargs = dict(self.BASE, max_missed_frames=3)
        full, _ = _run(quantized, scenes,
                       TrackerConfig(delta_gate=False, **kwargs))
        gated, _ = _run(quantized, scenes,
                        TrackerConfig(delta_gate=True, **kwargs))
        assert _track_tuples(gated) == _track_tuples(full)
        assert _scores(gated) == _scores(full)

    def test_gated_with_early_death_churn(self, fuzz_model_pair):
        """Tracks dying while their cell's cache entry is live must not
        resurrect with stale scores."""
        _, quantized = fuzz_model_pair
        scenes = _gate_scenes(seed=24, num_frames=8, motion_rate=0.1,
                              birth_rate=1.0, death_rate=1.0)
        kwargs = dict(self.BASE, max_missed_frames=0)
        full, _ = _run(quantized, scenes,
                       TrackerConfig(delta_gate=False, **kwargs))
        gated, _ = _run(quantized, scenes,
                        TrackerConfig(delta_gate=True, **kwargs))
        assert _track_tuples(gated) == _track_tuples(full)
        assert _scores(gated) == _scores(full)

    def test_update_many_falls_back_to_sequential_gating(
            self, fuzz_model_pair):
        _, quantized = fuzz_model_pair
        scenes = _gate_scenes(seed=25, num_frames=4, motion_rate=0.1)
        config = TrackerConfig(delta_gate=True, **self.BASE)
        fused = StreamingDetector(quantized, matcher=None,
                                  config=config).update_many(scenes)
        sequential, _ = _run(quantized, scenes, config)
        assert _track_tuples(fused) == _track_tuples(sequential)
        assert _scores(fused) == _scores(sequential)

    def test_static_sequence_gate_hit_rate(self, fuzz_model_pair):
        """Frozen feed: after frame 0 every cell reuses its cache."""
        _, quantized = fuzz_model_pair
        scenes = _gate_scenes(seed=26, num_frames=5, motion_rate=0.0,
                              birth_rate=0.0, death_rate=0.0)
        cells = scenes[0].grid ** 2
        _, detector = _run(quantized, scenes,
                           TrackerConfig(delta_gate=True, **self.BASE))
        stats = detector.gate_stats
        assert stats.recomputed == cells          # frame 0 only
        assert stats.skipped == cells * (len(scenes) - 1)
        assert stats.carried == 0                 # exact gate, no carryover
        assert stats.hit_rate == pytest.approx(4 / 5)

    def test_gate_counters_and_distribution_recorded(self, fuzz_model_pair):
        from repro.obs import get_registry

        _, quantized = fuzz_model_pair
        registry = get_registry()
        registry.reset()
        scenes = _gate_scenes(seed=27, num_frames=3, motion_rate=0.0,
                              birth_rate=0.0, death_rate=0.0)
        _run(quantized, scenes, TrackerConfig(delta_gate=True, **self.BASE))
        counters = registry.counters
        cells = scenes[0].grid ** 2
        assert counters["stream.cells.recomputed"].value == cells
        assert counters["stream.cells.skipped"].value == cells * 2
        hit_rate = registry.distributions["stream.delta_gate.hit_rate"]
        assert hit_rate.count == len(scenes)
        assert hit_rate.max == 1.0
        # the snapshot protocol (cross-shard merge) must carry the gate
        # metrics, not just the in-process view
        state = hit_rate.merge_state()
        assert state["count"] == len(scenes)
        assert counters["stream.cells.skipped"].merge_state()["value_fp"] > 0
        registry.reset()

    def test_reset_clears_gate_state(self, fuzz_model_pair):
        _, quantized = fuzz_model_pair
        scenes = _gate_scenes(seed=28, num_frames=2, motion_rate=0.0)
        _, detector = _run(quantized, scenes,
                           TrackerConfig(delta_gate=True, **self.BASE))
        assert detector._score_cache and detector.gate_stats.frames == 2
        detector.reset()
        assert detector._score_cache == {}
        assert detector.gate_stats.frames == 0
        # post-reset the detector recomputes from scratch, bit-equal
        replay = [[dataclasses.replace(t) for t in detector.update(scene)]
                  for scene in scenes]
        fresh, _ = _run(quantized, scenes,
                        TrackerConfig(delta_gate=True, **self.BASE))
        assert _track_tuples(replay) == _track_tuples(fresh)
        assert _scores(replay) == _scores(fresh)

    def test_kg_edit_invalidates_cached_scores(self, fuzz_model_pair):
        """Cache entries are keyed on the KG version: a constraint edit
        must force a full re-score even on unchanged pixels."""
        from repro.kg import GraphMatcher, SimulatedLLM

        _, quantized = fuzz_model_pair
        matcher = GraphMatcher(
            SimulatedLLM().generate_for_task(get_task("roadside_hazards")))
        scenes = _gate_scenes(seed=29, num_frames=2, motion_rate=0.0,
                              birth_rate=0.0, death_rate=0.0)
        cells = scenes[0].grid ** 2
        detector = StreamingDetector(
            quantized, matcher=matcher,
            config=TrackerConfig(delta_gate=True, **self.BASE))
        detector.update(scenes[0])
        detector.update(scenes[1])
        assert detector.gate_stats.skipped == cells
        constraint = matcher.kg.constraints[0]
        matcher.kg.replace_constraint(
            dataclasses.replace(constraint,
                                weight=constraint.weight * 0.5))
        detector.update(scenes[1])  # identical pixels, edited graph
        assert detector.gate_stats.recomputed == cells * 2
        assert detector.gate_stats.skipped == cells


class TestCarryover:
    """Tracker-prior carryover: approximate reuse under tiny jitter."""

    BASE = dict(on_threshold=0.2, off_threshold=0.1, smoothing=0.0)

    @staticmethod
    def _jittered_frames(base_scene, count, amplitude, seed=0):
        """Copies of one scene with per-frame sub-threshold pixel noise."""
        rng = np.random.default_rng(seed)
        frames = []
        for _ in range(count):
            noise = rng.uniform(-amplitude, amplitude,
                                base_scene.image.shape).astype(np.float32)
            frames.append(dataclasses.replace(
                base_scene, image=base_scene.image + noise))
        return frames

    def test_subthreshold_jitter_is_carried(self, fuzz_model_pair):
        _, quantized = fuzz_model_pair
        [scene] = _gate_scenes(seed=30, num_frames=1, motion_rate=0.0,
                               birth_rate=1.0, death_rate=0.0)
        frames = [scene] + self._jittered_frames(scene, 3, amplitude=0.005)
        config = TrackerConfig(delta_gate=True, motion_threshold=0.05,
                               **self.BASE)
        detector = StreamingDetector(quantized, matcher=None, config=config)
        for frame in frames:
            tracks = detector.update(frame)
        # jittered cells holding active tracks reuse the cached score
        assert detector.gate_stats.carried > 0
        assert tracks, "carryover should keep the confirmed tracks alive"

    def test_zero_threshold_never_carries(self, fuzz_model_pair):
        _, quantized = fuzz_model_pair
        [scene] = _gate_scenes(seed=30, num_frames=1, motion_rate=0.0,
                               birth_rate=1.0, death_rate=0.0)
        frames = [scene] + self._jittered_frames(scene, 3, amplitude=0.005)
        config = TrackerConfig(delta_gate=True, motion_threshold=0.0,
                               **self.BASE)
        detector = StreamingDetector(quantized, matcher=None, config=config)
        for frame in frames:
            detector.update(frame)
        assert detector.gate_stats.carried == 0
        assert detector.gate_stats.skipped == 0  # every frame changed pixels

    def test_refresh_every_one_degenerates_to_full(self, fuzz_model_pair):
        """refresh_every=1 re-scores every frame: carryover can never
        trigger and the output is bit-equal to full recompute."""
        _, quantized = fuzz_model_pair
        scenes = _gate_scenes(seed=31, num_frames=5, motion_rate=0.5)
        kwargs = dict(self.BASE, motion_threshold=0.05)
        full, _ = _run(quantized, scenes,
                       TrackerConfig(delta_gate=False, **kwargs))
        gated, detector = _run(
            quantized, scenes,
            TrackerConfig(delta_gate=True, refresh_every=1, **kwargs))
        assert _track_tuples(gated) == _track_tuples(full)
        assert _scores(gated) == _scores(full)
        assert detector.gate_stats.skipped == 0
        assert detector.gate_stats.carried == 0


class TestStreamBenchHelpers:
    def test_compare_snapshots_equal_and_mismatch(self):
        from repro.stream import compare_snapshots

        track = Track(track_id=0, cell=(0, 0), first_frame=0, last_frame=1,
                      score=0.5)
        # nesting: cameras -> frames -> tracks
        reference = [[[track]]]
        same = [[[dataclasses.replace(track)]]]
        assert compare_snapshots(reference, same) is None
        drifted = [[[dataclasses.replace(track, score=0.5 + 1e-3)]]]
        assert "score" in compare_snapshots(reference, drifted)
        assert compare_snapshots(reference, drifted,
                                 exact_scores=False, atol=1e-2) is None
        rebirth = [[[dataclasses.replace(track, track_id=1)]]]
        assert "track_id" in compare_snapshots(reference, rebirth)

    def test_run_stream_bench_row_contract(self, fuzz_model_pair):
        from repro.stream import run_stream_bench

        _, quantized = fuzz_model_pair
        task = get_task("roadside_hazards")
        row = run_stream_bench(
            quantized, None, task, num_cameras=1, num_frames=4, grid=2,
            cell_size=16, motion_rate=0.0, birth_rate=0.0, death_rate=0.0,
            seed=6)
        assert row["identical"] is True
        assert row["mismatch"] is None
        assert row["max_quality_delta"] == 0.0
        assert row["hit_rate"] > 0.5
        assert row["full_fps"] > 0 and row["gated_fps"] > 0
