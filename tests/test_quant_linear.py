"""QuantizedLinear and fake quantization (QAT)."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.quant import (
    FakeQuantize,
    MinMaxObserver,
    QuantSpec,
    QuantizedLinear,
    compute_qparams,
    fake_quantize,
)
from repro.tensor import Tensor, randn


def make_act_params(x, bits=8):
    spec = QuantSpec(bits=bits, symmetric=False)
    return compute_qparams(float(x.min()), float(x.max()), spec)


class TestQuantizedLinear:
    def test_w8a8_close_to_float(self):
        rng = np.random.default_rng(0)
        linear = Linear(32, 16, rng=rng)
        x = rng.standard_normal((8, 32)).astype(np.float32)
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        y_float = x @ linear.weight.data.T + linear.bias.data
        y_quant = qlinear(x)
        scale = np.abs(y_float).max()
        assert np.abs(y_quant - y_float).max() / scale < 0.05

    def test_integer_path_equals_call(self):
        """__call__ must be exactly quantize → integer GEMM → requantize."""
        rng = np.random.default_rng(1)
        linear = Linear(16, 8, rng=rng)
        x = rng.standard_normal((4, 16)).astype(np.float32)
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        manual = qlinear.forward_integer(qlinear.quantize_input(x))
        np.testing.assert_allclose(qlinear(x), manual, atol=1e-6)

    def test_zero_point_correction_exact(self):
        """Asymmetric activation zero-point is removed exactly, not approximately."""
        rng = np.random.default_rng(2)
        linear = Linear(8, 4, bias=False, rng=rng)
        x = np.abs(rng.standard_normal((4, 8))).astype(np.float32) + 1.0  # all positive
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        x_q = qlinear.quantize_input(x)
        dequant_x = (x_q - int(qlinear.act_params.zero_point)) * float(qlinear.act_params.scale)
        expected = dequant_x @ qlinear.dequantized_weight().T
        np.testing.assert_allclose(qlinear(x), expected, rtol=1e-4, atol=1e-5)

    def test_batched_nd_input(self):
        rng = np.random.default_rng(3)
        linear = Linear(8, 4, rng=rng)
        x = rng.standard_normal((2, 5, 8)).astype(np.float32)
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        assert qlinear(x).shape == (2, 5, 4)

    def test_lower_bits_more_error(self):
        rng = np.random.default_rng(4)
        linear = Linear(64, 32, rng=rng)
        x = rng.standard_normal((16, 64)).astype(np.float32)
        y_float = x @ linear.weight.data.T + linear.bias.data
        errors = []
        for bits in (2, 4, 8):
            spec = QuantSpec(bits=bits, symmetric=True, per_channel=True, axis=0)
            q = QuantizedLinear.from_linear(linear, make_act_params(x), spec)
            errors.append(float(np.abs(q(x) - y_float).mean()))
        assert errors[0] > errors[1] > errors[2]

    def test_rejects_per_channel_activations(self):
        rng = np.random.default_rng(5)
        linear = Linear(4, 2, rng=rng)
        spec = QuantSpec(bits=8, per_channel=True, axis=0)
        act_params = compute_qparams(np.zeros(2), np.ones(2), spec)
        with pytest.raises(ValueError):
            QuantizedLinear.from_linear(linear, act_params)

    def test_properties(self):
        rng = np.random.default_rng(6)
        linear = Linear(10, 7, rng=rng)
        q = QuantizedLinear.from_linear(
            linear, make_act_params(np.ones((1, 10), np.float32)))
        assert q.in_features == 10 and q.out_features == 7
        assert q.weight_bits == 8 and q.act_bits == 8


class TestFakeQuantize:
    def test_forward_matches_array_path(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        params = make_act_params(x)
        from repro.quant import fake_quantize_array

        out = fake_quantize(Tensor(x, requires_grad=True), params)
        np.testing.assert_allclose(out.data, fake_quantize_array(x, params),
                                   atol=1e-6)

    def test_ste_gradient_passthrough_in_range(self):
        x = Tensor(np.array([0.1, 0.5, -0.3], np.float32), requires_grad=True)
        params = compute_qparams(-1.0, 1.0, QuantSpec(bits=8, symmetric=True))
        fake_quantize(x, params).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_ste_gradient_zero_out_of_range(self):
        x = Tensor(np.array([5.0, -5.0, 0.0], np.float32), requires_grad=True)
        params = compute_qparams(-1.0, 1.0, QuantSpec(bits=8, symmetric=True))
        fake_quantize(x, params).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])

    def test_module_calibrate_then_freeze(self):
        fq = FakeQuantize(MinMaxObserver(QuantSpec(bits=8, symmetric=False)))
        x = Tensor(np.array([[0.0, 1.0, -1.0]], np.float32))
        out = fq(x)
        np.testing.assert_array_equal(out.data, x.data)  # calibrating: pass-through
        fq.freeze()
        out2 = fq(x)
        assert fq.params is not None
        assert np.abs(out2.data - x.data).max() <= float(fq.params.scale)

    def test_freeze_required_after_calibration(self):
        fq = FakeQuantize(MinMaxObserver(QuantSpec()))
        fq.calibrating = False
        with pytest.raises(RuntimeError):
            fq(Tensor(np.zeros((1, 2), np.float32)))
