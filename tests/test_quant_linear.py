"""QuantizedLinear and fake quantization (QAT)."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.quant import (
    FakeQuantize,
    MinMaxObserver,
    QuantSpec,
    QuantizedLinear,
    compute_qparams,
    fake_quantize,
)
from repro.tensor import Tensor, randn


def make_act_params(x, bits=8):
    spec = QuantSpec(bits=bits, symmetric=False)
    return compute_qparams(float(x.min()), float(x.max()), spec)


class TestQuantizedLinear:
    def test_w8a8_close_to_float(self):
        rng = np.random.default_rng(0)
        linear = Linear(32, 16, rng=rng)
        x = rng.standard_normal((8, 32)).astype(np.float32)
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        y_float = x @ linear.weight.data.T + linear.bias.data
        y_quant = qlinear(x)
        scale = np.abs(y_float).max()
        assert np.abs(y_quant - y_float).max() / scale < 0.05

    def test_integer_path_equals_call(self):
        """__call__ must be exactly quantize → integer GEMM → requantize."""
        rng = np.random.default_rng(1)
        linear = Linear(16, 8, rng=rng)
        x = rng.standard_normal((4, 16)).astype(np.float32)
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        manual = qlinear.forward_integer(qlinear.quantize_input(x))
        np.testing.assert_allclose(qlinear(x), manual, atol=1e-6)

    def test_zero_point_correction_exact(self):
        """Asymmetric activation zero-point is removed exactly, not approximately."""
        rng = np.random.default_rng(2)
        linear = Linear(8, 4, bias=False, rng=rng)
        x = np.abs(rng.standard_normal((4, 8))).astype(np.float32) + 1.0  # all positive
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        x_q = qlinear.quantize_input(x)
        dequant_x = (x_q - int(qlinear.act_params.zero_point)) * float(qlinear.act_params.scale)
        expected = dequant_x @ qlinear.dequantized_weight().T
        np.testing.assert_allclose(qlinear(x), expected, rtol=1e-4, atol=1e-5)

    def test_batched_nd_input(self):
        rng = np.random.default_rng(3)
        linear = Linear(8, 4, rng=rng)
        x = rng.standard_normal((2, 5, 8)).astype(np.float32)
        qlinear = QuantizedLinear.from_linear(linear, make_act_params(x))
        assert qlinear(x).shape == (2, 5, 4)

    def test_lower_bits_more_error(self):
        rng = np.random.default_rng(4)
        linear = Linear(64, 32, rng=rng)
        x = rng.standard_normal((16, 64)).astype(np.float32)
        y_float = x @ linear.weight.data.T + linear.bias.data
        errors = []
        for bits in (2, 4, 8):
            spec = QuantSpec(bits=bits, symmetric=True, per_channel=True, axis=0)
            q = QuantizedLinear.from_linear(linear, make_act_params(x), spec)
            errors.append(float(np.abs(q(x) - y_float).mean()))
        assert errors[0] > errors[1] > errors[2]

    def test_rejects_per_channel_activations(self):
        rng = np.random.default_rng(5)
        linear = Linear(4, 2, rng=rng)
        spec = QuantSpec(bits=8, per_channel=True, axis=0)
        act_params = compute_qparams(np.zeros(2), np.ones(2), spec)
        with pytest.raises(ValueError):
            QuantizedLinear.from_linear(linear, act_params)

    def test_properties(self):
        rng = np.random.default_rng(6)
        linear = Linear(10, 7, rng=rng)
        q = QuantizedLinear.from_linear(
            linear, make_act_params(np.ones((1, 10), np.float32)))
        assert q.in_features == 10 and q.out_features == 7
        assert q.weight_bits == 8 and q.act_bits == 8


class TestExactBlasKernels:
    """The BLAS fast path must reproduce the int64 reference bit for bit."""

    @staticmethod
    def _quantized(bits, symmetric, in_features=24, out_features=12, seed=0):
        rng = np.random.default_rng(seed + bits * 7 + symmetric)
        linear = Linear(in_features, out_features, rng=rng)
        x = rng.standard_normal((33, in_features)).astype(np.float32)
        act_spec = QuantSpec(bits=bits, symmetric=symmetric)
        act_params = compute_qparams(float(x.min()), float(x.max()), act_spec)
        weight_spec = QuantSpec(bits=bits, symmetric=True,
                                per_channel=True, axis=0)
        return QuantizedLinear.from_linear(linear, act_params, weight_spec), x

    @pytest.mark.parametrize("bits", [2, 4, 8, 16])
    @pytest.mark.parametrize("symmetric", [True, False])
    def test_kernel_bitwise_equals_int64_reference(self, bits, symmetric):
        q, x = self._quantized(bits, symmetric)
        x_q = q.quantize_input(x)
        np.testing.assert_array_equal(q.forward_integer(x_q),
                                      q.forward_integer_reference(x_q))

    @pytest.mark.parametrize("bits", [2, 4, 8, 16])
    @pytest.mark.parametrize("symmetric", [True, False])
    def test_call_bitwise_equals_reference_mode(self, bits, symmetric,
                                                monkeypatch):
        q, x = self._quantized(bits, symmetric)
        fast = q(x)
        monkeypatch.setenv("REPRO_QUANT_EXACT", "1")
        reference = q(x)
        assert fast.dtype == reference.dtype == np.float32
        np.testing.assert_array_equal(fast, reference)

    def test_nd_kernel_bitwise_equals_reference(self):
        q, x = self._quantized(8, False)
        x_q = q.quantize_input(x.reshape(3, 11, -1))
        np.testing.assert_array_equal(q.forward_integer(x_q),
                                      q.forward_integer_reference(x_q))

    def test_batch_invariant(self):
        """Fused rows must equal per-row forwards bit for bit (the
        exact-integer accumulator makes BLAS blocking order irrelevant)."""
        q, x = self._quantized(8, False)
        batched = q(x)
        for i in range(x.shape[0]):
            np.testing.assert_array_equal(batched[i], q(x[i : i + 1])[0])

    def test_gemm_dtype_selected_by_exactness_bound(self):
        narrow, _ = self._quantized(8, False)
        assert narrow._gemm_dtype is np.float32  # K·amax·wmax ≤ 2^24
        wide, _ = self._quantized(16, False)
        assert wide._gemm_dtype is np.float64    # 16-bit products overflow f32

    def test_quantize_input_returns_storage_dtype(self):
        for bits, symmetric, expected in ((8, True, np.int8),
                                          (8, False, np.uint8),
                                          (16, True, np.int16),
                                          (16, False, np.uint16)):
            q, x = self._quantized(bits, symmetric)
            assert q.quantize_input(x).dtype == expected

    def test_float64_overflow_bound_rejected(self):
        # 2·K·amax·wmax ≥ 2^53 would let a partial sum round inside the
        # float64 GEMM; construction must refuse rather than go inexact.
        k = 1 << 23
        weight_q = np.full((1, k), 32767, dtype=np.int16)
        weight_params = compute_qparams(-1.0, 1.0,
                                        QuantSpec(bits=16, symmetric=True))
        act_params = compute_qparams(0.0, 1.0,
                                     QuantSpec(bits=16, symmetric=False))
        with pytest.raises(ValueError, match="not exactly representable"):
            QuantizedLinear(weight_q, weight_params, act_params, None)

    def test_escape_hatch_routes_kernel_to_reference(self, monkeypatch):
        q, x = self._quantized(8, False)
        calls = []
        original = q.forward_integer_reference
        monkeypatch.setattr(
            q, "forward_integer_reference",
            lambda x_q: calls.append(1) or original(x_q))
        monkeypatch.setenv("REPRO_QUANT_EXACT", "1")
        q.forward_integer(q.quantize_input(x))
        assert calls, "REPRO_QUANT_EXACT=1 must use the int64 reference"


class TestFakeQuantize:
    def test_forward_matches_array_path(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        params = make_act_params(x)
        from repro.quant import fake_quantize_array

        out = fake_quantize(Tensor(x, requires_grad=True), params)
        np.testing.assert_allclose(out.data, fake_quantize_array(x, params),
                                   atol=1e-6)

    def test_ste_gradient_passthrough_in_range(self):
        x = Tensor(np.array([0.1, 0.5, -0.3], np.float32), requires_grad=True)
        params = compute_qparams(-1.0, 1.0, QuantSpec(bits=8, symmetric=True))
        fake_quantize(x, params).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_ste_gradient_zero_out_of_range(self):
        x = Tensor(np.array([5.0, -5.0, 0.0], np.float32), requires_grad=True)
        params = compute_qparams(-1.0, 1.0, QuantSpec(bits=8, symmetric=True))
        fake_quantize(x, params).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])

    def test_module_calibrate_then_freeze(self):
        fq = FakeQuantize(MinMaxObserver(QuantSpec(bits=8, symmetric=False)))
        x = Tensor(np.array([[0.0, 1.0, -1.0]], np.float32))
        out = fq(x)
        np.testing.assert_array_equal(out.data, x.data)  # calibrating: pass-through
        fq.freeze()
        out2 = fq(x)
        assert fq.params is not None
        assert np.abs(out2.data - x.data).max() <= float(fq.params.scale)

    def test_freeze_required_after_calibration(self):
        fq = FakeQuantize(MinMaxObserver(QuantSpec()))
        fq.calibrating = False
        with pytest.raises(RuntimeError):
            fq(Tensor(np.zeros((1, 2), np.float32)))
