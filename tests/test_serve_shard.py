"""Sharded serving tier: ``ShardRouter`` over forked engine workers.

Covers the multi-process refactor of the serving stack:

* the pure routing/seed functions (``shard_for_mission`` is a stable
  cross-process affinity hash; ``worker_seed`` de-correlates forked
  RNG streams),
* result exactness — scenes routed through worker processes must be
  bit-identical to in-process detection (the quantized batch-invariance
  guarantee extended across the process boundary),
* lifecycle: graceful SIGTERM drain (in-flight finishes, raced jobs are
  rejected with ``engine.rejected`` and rerouted without loss), queue
  backpressure shedding, per-tenant fairness caps, idempotent close,
* cross-process metrics: every shard serves a mergeable snapshot and
  the front-end's ``/snapshot`` is bit-identical to
  ``merge_snapshots`` over the per-shard documents,
* :class:`MetricsServer` ephemeral-port binding and ``snapshot_fn``
  aggregation endpoints,
* ``repro obs top --url a --url b`` merging: terminal totals bit-match
  a single-process run of the same workload.
"""

import json
import multiprocessing
import time
import urllib.request

import numpy as np
import pytest

from repro.cascade import CascadeRouter, CascadeSession, FAST_PATH
from repro.data import (
    SceneConfig,
    SceneGenerator,
    attribute_head_spec,
    get_task,
)
from repro.data.datasets import num_classes
from repro.detect import TaskDetector
from repro.kg import GraphMatcher, SimulatedLLM
from repro.nn import VisionTransformer, ViTConfig
from repro.obs import Registry, get_registry
from repro.obs.export import (
    MetricsServer,
    merge_snapshots,
    mergeable_snapshot,
)
from repro.obs.registry import FP_SCALE
from repro.serve import (
    EngineConfig,
    ShardClosed,
    ShardConfig,
    ShardRejected,
    ShardRouter,
    shard_for_mission,
    worker_seed,
)

TASK = "roadside_hazards"
BASE_SEED = 7

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded serving tests need the fork start method")


# ----------------------------------------------------------------------
# Worker factories (module level so they pickle under any start method)
# ----------------------------------------------------------------------
def build_quantized_detector(task: str) -> TaskDetector:
    """Deterministic quantized detector — same recipe in the parent
    (reference) and inside the worker, so outputs can be compared
    bit-for-bit across the process boundary."""
    from repro.quant import quantize_vit

    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(3))
    model.eval()
    calibration = np.random.default_rng(0).random(
        (8, 3, 32, 32)).astype(np.float32)
    quantized = quantize_vit(model, calibration)
    kg = SimulatedLLM().generate_for_task(get_task(task))
    return TaskDetector(quantized, matcher=GraphMatcher(kg),
                        score_threshold=0.0)


class DetectorSession:
    """Engine-facing session: just the batch entry point."""

    def __init__(self, detector: TaskDetector) -> None:
        self._detector = detector

    def detect_batch(self, scenes, stride=None):
        return self._detector.detect_batch(scenes, stride=stride)


class QuantizedSessionFactory:
    """Builds the quantized detector inside the worker process."""

    def __call__(self, mission: str):
        task = mission.split(":", 1)[0]
        return DetectorSession(build_quantized_detector(task))


class CascadeSessionFactory:
    """Router-only cascade session over the quantized fast path."""

    def __call__(self, mission: str):
        task = mission.split(":", 1)[0]
        return CascadeSession(
            None, CascadeRouter(build_quantized_detector(task)))


class SlowEchoSession:
    """Model-free session for lifecycle tests: sleeps, returns empties."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def detect_batch(self, scenes, stride=None):
        if self.delay_s:
            time.sleep(self.delay_s)
        return [[] for _ in scenes]


class SlowEchoSessionFactory:
    def __init__(self, delay_s: float = 0.0) -> None:
        self.delay_s = delay_s

    def __call__(self, mission: str):
        return SlowEchoSession(self.delay_s)


def mission_for_shard(target: int, num_shards: int,
                      task: str = TASK) -> str:
    """A mission name whose affinity hash lands on ``target``."""
    index = 0
    while True:
        name = f"{task}:m{index}"
        if shard_for_mission(name, num_shards) == target:
            return name
        index += 1


def echo_router(delay_s: float = 0.0, *, engine: EngineConfig = None,
                **overrides) -> ShardRouter:
    config = ShardConfig(
        num_shards=overrides.pop("num_shards", 2),
        engine=engine or EngineConfig(max_batch=2, flush_ms=2.0,
                                      workers=1, queue_size=8),
        start_method="fork",
        **overrides)
    return ShardRouter(SlowEchoSessionFactory(delay_s), config)


def fetch_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True)


def assert_detections_bit_equal(reference, candidate):
    assert len(reference) == len(candidate)
    for ref_scene, cand_scene in zip(reference, candidate):
        assert len(ref_scene) == len(cand_scene)
        for ref, cand in zip(ref_scene, cand_scene):
            assert tuple(ref.bbox) == tuple(cand.bbox)
            assert ref.score == cand.score
            assert ref.objectness == cand.objectness
            assert ref.task_score == cand.task_score
            assert ref.class_id == cand.class_id


@pytest.fixture(scope="module")
def scenes():
    return list(SceneGenerator(SceneConfig(grid=2),
                               seed=11).generate_batch(4))


@pytest.fixture(scope="module")
def reference_detector():
    return build_quantized_detector(TASK)


# ----------------------------------------------------------------------
# Pure routing / seeding functions
# ----------------------------------------------------------------------
class TestRoutingFunctions:
    def test_shard_for_mission_deterministic_and_in_range(self):
        for n in (1, 2, 3, 8):
            for mission in ("a", "b", TASK, f"{TASK}:cold1"):
                index = shard_for_mission(mission, n)
                assert 0 <= index < n
                assert index == shard_for_mission(mission, n)

    def test_shard_for_mission_spreads(self):
        hit = {shard_for_mission(f"mission-{i}", 4) for i in range(64)}
        assert hit == set(range(4))

    def test_shard_for_mission_validates(self):
        with pytest.raises(ValueError):
            shard_for_mission("x", 0)

    def test_worker_seed_deterministic(self):
        assert worker_seed(7, 0, 123) == worker_seed(7, 0, 123)

    def test_worker_seed_distinct_per_input(self):
        base = worker_seed(7, 0, 50)
        assert base != worker_seed(8, 0, 50)
        assert base != worker_seed(7, 1, 50)
        assert base != worker_seed(7, 0, 51)
        assert len({worker_seed(7, s, 1000 + s) for s in range(8)}) == 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(num_shards=0)
        with pytest.raises(ValueError):
            ShardConfig(queue_size=0)
        with pytest.raises(ValueError):
            ShardConfig(max_inflight_per_tenant=0)


# ----------------------------------------------------------------------
# Result exactness and cross-process metrics over real detectors
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def quantized_router():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs fork start method")
    config = ShardConfig(
        num_shards=2,
        engine=EngineConfig(max_batch=4, flush_ms=2.0, workers=1,
                            queue_size=8),
        queue_size=8,
        metrics=True,
        base_seed=BASE_SEED,
        start_method="fork")
    router = ShardRouter(QuantizedSessionFactory(), config)
    yield router
    router.close()


@fork_only
class TestShardedResults:
    def test_bit_equal_to_sequential(self, quantized_router, scenes,
                                     reference_detector):
        reference = [reference_detector.detect(scene) for scene in scenes]
        results = quantized_router.detect_many(scenes, TASK)
        assert any(len(dets) > 0 for dets in reference)
        assert_detections_bit_equal(reference, results)

    def test_rng_reseeded_per_worker(self, quantized_router):
        info = quantized_router.shard_info()
        probes = [quantized_router.probe("rng", shard)
                  for shard in range(2)]
        for shard, (meta, probe) in enumerate(zip(info, probes)):
            expected = worker_seed(BASE_SEED, shard, meta["pid"])
            assert meta["seed"] == expected
            assert probe["seed"] == expected
            assert probe["pid"] == meta["pid"]
        # Forked children would share the parent's RNG state without the
        # per-process reseed: the streams must have diverged.
        assert probes[0]["samples"] != probes[1]["samples"]

    def test_shard_metrics_endpoints_live(self, quantized_router):
        urls = quantized_router.shard_metrics_urls()
        assert len(urls) == 2
        assert len(set(urls)) == 2
        for url in urls:
            assert int(url.rsplit(":", 1)[1]) > 0
            assert fetch_json(url + "/healthz")["status"] == "ok"
            doc = fetch_json(url + "/snapshot")
            assert doc["schema"] == "repro.obs.merge/1"

    def test_front_end_snapshot_bit_identical_to_merge(
            self, quantized_router, scenes):
        before = quantized_router.aggregate_snapshot()
        before_fp = before["counters"].get(
            "engine.scenes", {"value_fp": 0})["value_fp"]
        quantized_router.detect_many(scenes, TASK)

        shard_docs = [fetch_json(url + "/snapshot")
                      for url in quantized_router.shard_metrics_urls()]
        front = quantized_router.serve_metrics()
        try:
            front_doc = fetch_json(front.url + "/snapshot")
        finally:
            front.stop()

        # The satellite property: the aggregation endpoint adds nothing
        # of its own — its document is bit-identical to merging the
        # per-shard documents out of band, whichever transport fetched
        # them.
        assert canonical(front_doc) == canonical(merge_snapshots(shard_docs))
        assert canonical(front_doc) == canonical(
            quantized_router.aggregate_snapshot())
        # Merged totals account for exactly the scenes just served.
        delta = front_doc["counters"]["engine.scenes"]["value_fp"] - before_fp
        assert delta == len(scenes) * FP_SCALE
        # Satellite: workers pre-register the reject counter so the
        # merged document carries an explicit zero, never a fallback.
        assert front_doc["counters"]["engine.rejected"]["value_fp"] == 0


@fork_only
class TestCascadeThroughShards:
    def test_decisions_and_results_bit_equal_fast_path(
            self, scenes, reference_detector):
        config = ShardConfig(
            num_shards=2,
            engine=EngineConfig(max_batch=4, flush_ms=2.0, workers=1,
                                queue_size=8),
            base_seed=BASE_SEED,
            start_method="fork")
        with ShardRouter(CascadeSessionFactory(), config) as router:
            results = router.detect_many(scenes, TASK)
            primary = router.shard_for(TASK)
            decisions = router.probe("decisions", primary)[TASK]

        reference_session = CascadeSession(
            None, CascadeRouter(reference_detector))
        ref_results, ref_decisions = reference_session.route_batch(scenes)

        # With no specialist the cascade is the fast path; the shard
        # worker's shed/fast decisions must reproduce the in-process
        # ones bit-for-bit (routes and margins), and the detections are
        # exactly the fast detector's output.
        assert_detections_bit_equal(ref_results, results)
        assert len(decisions) == len(ref_decisions) == len(scenes)
        assert {d["route"] for d in decisions} == {FAST_PATH}
        assert (sorted(d["margin"] for d in decisions)
                == sorted(d.margin for d in ref_decisions))


# ----------------------------------------------------------------------
# Lifecycle: affinity, drain, shedding, fairness, close
# ----------------------------------------------------------------------
@fork_only
class TestLifecycle:
    def test_affinity_warms_only_the_primary_shard(self, scenes):
        with echo_router() as router:
            mission = mission_for_shard(0, 2)
            router.detect_many(scenes[:2], mission)
            assert mission in router.probe("queue_depth", 0)
            assert mission not in router.probe("queue_depth", 1)

    def test_graceful_drain_finishes_rejects_and_reroutes(self, scenes):
        from repro.serve.shard import _ShardJob

        with echo_router(0.2) as router:
            mission = mission_for_shard(0, 2)
            first = [router.submit(scenes[i % len(scenes)], mission)
                     for i in range(4)]

            router.drain_shard(0)
            deadline = time.monotonic() + 30.0
            while "states=[d" not in repr(router):
                assert time.monotonic() < deadline, "drain never announced"
                time.sleep(0.01)

            # Simulate the dispatch/drain race: a job that left the
            # front-end before the draining announcement arrived.  The
            # worker must reject it (engine.rejected) and the router
            # must reroute it to a live shard instead of dropping it.
            handle = router._handles[0]
            raced = _ShardJob(1_000_000, mission, scenes[0], None, None,
                              0, None)
            with handle.lock:
                handle.pending[raced.job_id] = raced
            assert handle.send(("job", raced.job_id, mission, scenes[0],
                                None, None))

            # New submits route around the draining shard.
            later = [router.submit(scenes[i % len(scenes)], mission)
                     for i in range(4)]

            # Nothing is dropped: every future resolves with a result.
            for future in first + [raced] + later:
                if isinstance(future, _ShardJob):
                    assert future.future.result(timeout=60.0) == []
                else:
                    assert future.result(timeout=60.0) == []

            router.close()
            docs = router.shard_snapshots()
            merged = merge_snapshots(docs)
            # All 9 scenes executed exactly once somewhere (reroute is
            # not re-execution), and the drained worker counted at
            # least the raced rejection.
            assert (merged["counters"]["engine.scenes"]["value_fp"]
                    == 9 * FP_SCALE)
            assert (merged["counters"]["engine.rejected"]["value_fp"]
                    >= 1 * FP_SCALE)
            assert (docs[0]["counters"]["engine.rejected"]["value_fp"]
                    >= 1 * FP_SCALE)
            # The post-drain traffic landed on the surviving shard.
            assert (docs[1]["counters"]["engine.scenes"]["value_fp"]
                    >= 4 * FP_SCALE)

    def test_queue_backpressure_sheds_nonblocking_submits(self):
        registry = get_registry()
        shed_before = registry.counters.get("shard.rejected")
        shed_before = shed_before.value if shed_before else 0
        # One shard, depth-1 queues everywhere, slow batches, and fat
        # payloads so the pipe buffer fills: backpressure must surface
        # as ShardRejected on a non-blocking submit, not as loss.
        payload = np.zeros(100_000, dtype=np.uint8)
        engine = EngineConfig(max_batch=1, flush_ms=1.0, workers=1,
                              queue_size=1)
        accepted, shed = [], False
        with echo_router(0.5, engine=engine, num_shards=1,
                         queue_size=1) as router:
            for _ in range(20):
                try:
                    accepted.append(
                        router.submit(payload, TASK, block=False))
                except ShardRejected:
                    shed = True
                    break
            assert shed, "bounded queues never pushed back"
            for future in accepted:
                assert future.result(timeout=60.0) == []
        assert registry.counters["shard.rejected"].value == shed_before + 1

    def test_tenant_fairness_cap(self, scenes):
        registry = get_registry()
        tenant_shed = registry.counters.get("shard.shed.tenant")
        tenant_shed = tenant_shed.value if tenant_shed else 0
        with echo_router(0.3, max_inflight_per_tenant=1) as router:
            hot = router.submit(scenes[0], TASK, tenant="hot")
            with pytest.raises(ShardRejected):
                router.submit(scenes[1], TASK, tenant="hot")
            # Another tenant is unaffected by the hot tenant's cap.
            cold = router.submit(scenes[1], TASK, tenant="cold")
            assert hot.result(timeout=30.0) == []
            assert cold.result(timeout=30.0) == []
            # The slot releases on completion, not on shed.
            again = router.submit(scenes[2], TASK, tenant="hot")
            assert again.result(timeout=30.0) == []
        assert (registry.counters["shard.shed.tenant"].value
                == tenant_shed + 1)

    def test_close_is_idempotent_and_submit_after_close_raises(
            self, scenes):
        router = echo_router()
        router.close()
        router.close()
        assert router.closed
        with pytest.raises(ShardClosed):
            router.submit(scenes[0], TASK)


# ----------------------------------------------------------------------
# MetricsServer: ephemeral ports and aggregation endpoints
# ----------------------------------------------------------------------
class TestMetricsServer:
    def test_port_zero_binds_ephemeral_and_reports_actual(self):
        registry = Registry("shard-test")
        registry.count("requests", 2)
        with MetricsServer(registry, port=0) as server:
            assert server.port > 0
            assert server.url.endswith(f":{server.port}")
            doc = fetch_json(server.url + "/snapshot")
            assert doc["counters"]["requests"]["value_fp"] == 2 * FP_SCALE

    def test_two_ephemeral_servers_never_collide(self):
        registry = Registry("shard-test")
        with MetricsServer(registry, port=0) as a:
            with MetricsServer(registry, port=0) as b:
                assert a.port != b.port

    def test_snapshot_fn_serves_the_aggregated_document(self):
        left, right = Registry("left"), Registry("right")
        left.count("events", 1)
        right.count("events", 3)
        right.timer("stage").record(0.25)

        def aggregate():
            return merge_snapshots([mergeable_snapshot(left),
                                    mergeable_snapshot(right)])

        with MetricsServer(snapshot_fn=aggregate, port=0) as server:
            doc = fetch_json(server.url + "/snapshot")
            assert doc["counters"]["events"]["value_fp"] == 4 * FP_SCALE
            assert canonical(doc) == canonical(
                json.loads(json.dumps(aggregate())))
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=10) as resp:
                text = resp.read().decode()
            assert 'repro_events_total{name="events"} 4' in text
            assert 'stage="stage"' in text


# ----------------------------------------------------------------------
# repro obs top --url a --url b
# ----------------------------------------------------------------------
class TestObsTopMultiUrl:
    def test_parser_accepts_repeated_urls(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["obs", "top", "--url", "http://h1:1", "--url", "http://h2:2"])
        assert args.url == ["http://h1:1", "http://h2:2"]

    def test_merged_totals_bit_match_single_process_run(self):
        def record(registry, timers, counters, dists):
            for name, values in timers.items():
                timer = registry.timer(name)
                for value in values:
                    timer.record(value)
            for name, amount in counters.items():
                registry.count(name, amount)
            for name, values in dists.items():
                for value in values:
                    registry.observe(name, value)

        # One workload, split across two "processes" vs run in one.
        half_a = (
            {"detect.batch": [0.25, 0.5], "engine.queue_wait": [0.125]},
            {"engine.scenes": 5, "shard.submitted": 3},
            {"engine.batch_size": [2.0, 4.0]})
        half_b = (
            {"detect.batch": [1.5], "engine.queue_wait": [0.0625, 0.75]},
            {"engine.scenes": 7, "engine.rejected": 2},
            {"engine.batch_size": [8.0]})

        registry_a, registry_b = Registry("a"), Registry("b")
        record(registry_a, *half_a)
        record(registry_b, *half_b)
        single = Registry("single")
        record(single, *half_a)
        record(single, *half_b)

        from repro.cli import _fetch_merged_snapshot

        with MetricsServer(registry_a, port=0) as server_a:
            with MetricsServer(registry_b, port=0) as server_b:
                merged = _fetch_merged_snapshot([server_a.url,
                                                 server_b.url])

        expected = json.loads(json.dumps(mergeable_snapshot(single)))
        assert canonical(merged) == canonical(expected)
        assert merged["counters"]["engine.scenes"]["value_fp"] == \
            12 * FP_SCALE

    def test_single_url_is_an_identity(self):
        registry = Registry("solo")
        registry.count("events", 9)
        registry.timer("stage").record(0.5)

        from repro.cli import _fetch_merged_snapshot

        with MetricsServer(registry, port=0) as server:
            merged = _fetch_merged_snapshot([server.url])
        expected = json.loads(json.dumps(mergeable_snapshot(registry)))
        assert canonical(merged) == canonical(expected)
