"""Forward semantics of the tensor engine: shapes, values, grad modes."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    arange,
    cat,
    dropout_mask,
    full,
    is_grad_enabled,
    no_grad,
    one_hot,
    ones,
    rand,
    randn,
    softmax,
    log_softmax,
    stack,
    tensor,
    zeros,
)


class TestConstructors:
    def test_zeros_ones_full(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones((4,)).data.sum() == 4.0
        assert np.all(full((2, 2), 7.5).data == 7.5)

    def test_arange(self):
        np.testing.assert_array_equal(arange(5).data, np.arange(5, dtype=np.float32))

    def test_randn_reproducible(self):
        a = randn(3, 3, rng=np.random.default_rng(5))
        b = randn(3, 3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.data, b.data)

    def test_rand_range(self):
        r = rand(100, rng=np.random.default_rng(0))
        assert (r.data >= 0).all() and (r.data < 1).all()

    def test_tensor_dtype_default(self):
        assert tensor([1, 2, 3]).dtype == np.float32

    def test_tensor_from_tensor(self):
        a = tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_array_equal(a.data, b.data)

    def test_one_hot(self):
        oh = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            oh.data, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], np.float32)
        )

    def test_dropout_mask_expectation(self):
        mask = dropout_mask((10000,), keep_prob=0.8,
                            rng=np.random.default_rng(0))
        # inverted dropout: E[mask] = 1
        assert abs(mask.data.mean() - 1.0) < 0.05
        assert set(np.unique(mask.data)).issubset({0.0, np.float32(1 / 0.8)})


class TestGradModes:
    def test_no_grad_context(self):
        a = tensor([1.0], requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2.0
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_requires_grad_respects_mode(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad

    def test_from_op_detaches_without_grad_parents(self):
        a = tensor([1.0])  # no grad
        out = a * 3.0
        assert not out.requires_grad
        assert out._backward is None


class TestForwardValues:
    def test_softmax_rows_sum_to_one(self):
        x = randn(5, 7, rng=np.random.default_rng(1))
        s = softmax(x).data
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(5), rtol=1e-5)
        assert (s >= 0).all()

    def test_softmax_shift_invariance(self):
        x = randn(3, 4, rng=np.random.default_rng(2))
        a = softmax(x).data
        b = softmax(x + 100.0).data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_log_softmax_consistency(self):
        x = randn(3, 4, rng=np.random.default_rng(3))
        np.testing.assert_allclose(
            np.exp(log_softmax(x).data), softmax(x).data, atol=1e-6
        )

    def test_softmax_extreme_values_stable(self):
        x = tensor([[1000.0, -1000.0]])
        s = softmax(x).data
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s, [[1.0, 0.0]], atol=1e-6)

    def test_matmul_matches_numpy(self):
        a = randn(4, 5, rng=np.random.default_rng(4))
        b = randn(5, 6, rng=np.random.default_rng(5))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data, rtol=1e-5)

    def test_cat_values(self):
        a, b = ones(2, 2), zeros(2, 3)
        out = cat([a, b], axis=1)
        assert out.shape == (2, 5)
        np.testing.assert_array_equal(out.data[:, :2], 1.0)

    def test_stack_shape(self):
        out = stack([ones(2, 2), zeros(2, 2)], axis=0)
        assert out.shape == (2, 2, 2)

    def test_comparison_returns_ndarray(self):
        a = tensor([1.0, 2.0, 3.0])
        result = a > 1.5
        assert isinstance(result, np.ndarray)
        np.testing.assert_array_equal(result, [False, True, True])

    def test_transpose_default_last_two(self):
        x = randn(2, 3, 4, rng=np.random.default_rng(6))
        assert x.transpose().shape == (2, 4, 3)

    def test_item_scalar(self):
        assert tensor([[3.5]]).item() == pytest.approx(3.5)

    def test_argmax(self):
        x = tensor([[1.0, 5.0, 2.0]])
        assert x.argmax(axis=-1)[0] == 1

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(zeros(2, 3))

    def test_len(self):
        assert len(zeros(4, 2)) == 4


class TestErrors:
    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            tensor([1.0]) ** tensor([2.0])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            _ = randn(2, 3) @ randn(4, 5)
