"""Core framework: task specs, selector policy, registry, pipeline wiring."""

import numpy as np
import pytest

from repro.core import (
    ConfigurationSelector,
    ITaskPipeline,
    ModelRegistry,
    QuantizedConfiguration,
    TaskSpec,
    TaskSpecificConfiguration,
    build_quantized_configuration,
)
from repro.data import SceneConfig, SceneGenerator, get_task, sample_profile
from repro.kg import Constraint, ConstraintKind, KnowledgeGraph, SimulatedLLM


@pytest.fixture(scope="module")
def quantized_configuration(student_vit):
    rng = np.random.default_rng(0)
    calibration = rng.random((24, 3, 32, 32)).astype(np.float32)
    return build_quantized_configuration(student_vit, calibration=calibration)


def simple_kg(task_name, color):
    kg = KnowledgeGraph(task_name)
    kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "color",
                                 frozenset({color}), 1.0))
    return kg


class TestTaskSpec:
    def test_from_definition(self):
        task = get_task("cargo_audit")
        spec = TaskSpec.from_definition(task)
        assert spec.name == task.name
        assert spec.mission_text == task.mission_text
        assert spec.definition is task
        assert spec.num_shots == 0

    def test_with_support(self):
        task = get_task("cargo_audit")
        rng = np.random.default_rng(0)
        pos = [sample_profile(rng) for _ in range(3)]
        spec = TaskSpec.from_definition(task, support_positives=pos)
        assert spec.num_shots == 3


class TestSelector:
    def test_selects_matching_specialist(self):
        selector = ConfigurationSelector({"red_task": simple_kg("red_task", "red")})
        decision = selector.select(simple_kg("query", "red"))
        assert decision.kind == "task_specific"
        assert decision.specialist_name == "red_task"
        assert decision.similarity == pytest.approx(1.0)

    def test_falls_back_when_dissimilar(self):
        selector = ConfigurationSelector({"red_task": simple_kg("red_task", "red")})
        decision = selector.select(simple_kg("query", "blue"))
        assert decision.kind == "quantized"

    def test_multi_task_forces_quantized(self):
        selector = ConfigurationSelector({"red_task": simple_kg("red_task", "red")})
        decision = selector.select(simple_kg("query", "red"), multi_task=True)
        assert decision.kind == "quantized"
        assert "multi-task" in decision.rationale

    def test_latency_budget_forces_quantized(self):
        selector = ConfigurationSelector(
            {"red_task": simple_kg("red_task", "red")},
            accelerator_latency_ms=0.05, specialist_latency_ms=5.0,
        )
        decision = selector.select(simple_kg("query", "red"),
                                   latency_budget_ms=1.0)
        assert decision.kind == "quantized"
        assert "latency" in decision.rationale

    def test_no_specialists(self):
        decision = ConfigurationSelector().select(simple_kg("q", "red"))
        assert decision.kind == "quantized"

    def test_register_specialist(self):
        selector = ConfigurationSelector()
        selector.register_specialist("t", simple_kg("t", "cyan"))
        name, sim = selector.best_specialist(simple_kg("q", "cyan"))
        assert name == "t" and sim == pytest.approx(1.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ConfigurationSelector(similarity_threshold=1.5)


class TestRegistry:
    def test_save_load_roundtrip(self, tmp_path, student_vit):
        registry = ModelRegistry(str(tmp_path))
        registry.save("demo", student_vit, extra={"note": "test"})
        assert registry.exists("demo")
        loaded = registry.load("demo")
        rng = np.random.default_rng(0)
        x = rng.random((2, 3, 32, 32)).astype(np.float32)
        from repro.tensor import Tensor, no_grad

        with no_grad():
            a = student_vit(Tensor(x))["class_logits"].data
            b = loaded(Tensor(x))["class_logits"].data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_names_and_metadata(self, tmp_path, student_vit):
        registry = ModelRegistry(str(tmp_path))
        registry.save("alpha", student_vit)
        registry.save("beta", student_vit)
        assert registry.names() == ["alpha", "beta"]
        assert registry.metadata("alpha")["dim"] == student_vit.config.dim

    def test_missing_model(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelRegistry(str(tmp_path)).load("ghost")


class TestPipeline:
    def test_prepare_uses_quantized_without_specialists(self, quantized_configuration):
        pipeline = ITaskPipeline(quantized_configuration)
        spec = TaskSpec.from_definition(get_task("valve_inspection"))
        result = pipeline.prepare(spec)
        assert result.decision.kind == "quantized"
        assert result.configuration is quantized_configuration
        assert result.kg.get(ConstraintKind.REQUIRES, "color") is not None

    def test_specialist_selected_when_registered(self, quantized_configuration,
                                                 student_vit):
        task = get_task("valve_inspection")
        pipeline = ITaskPipeline(quantized_configuration)
        specialist = TaskSpecificConfiguration(
            name="spec", kind="task_specific", student=student_vit,
            task_name=task.name,
        )
        kg = SimulatedLLM().generate_for_task(task)
        pipeline.register_specialist(task.name, specialist, kg)
        result = pipeline.prepare(TaskSpec.from_definition(task))
        assert result.decision.kind == "task_specific"
        assert result.configuration is specialist

    def test_kg_ablation_disables_matcher(self, quantized_configuration):
        pipeline = ITaskPipeline(quantized_configuration, use_kg=False)
        result = pipeline.prepare(TaskSpec.from_definition(get_task("cargo_audit")))
        assert result.detector.matcher is None

    def test_refinement_uses_support(self, quantized_configuration):
        from repro.kg import LLMNoiseConfig

        task = get_task("valve_inspection")
        rng = np.random.default_rng(0)
        positives = [sample_profile(rng, fixed=dict(task.predicate.allowed and {
            "color": "blue", "shape": "ring", "size": "medium"})) for _ in range(6)]
        noisy_llm = SimulatedLLM(LLMNoiseConfig(omission_rate=1.0, seed=0))
        pipeline = ITaskPipeline(quantized_configuration, llm=noisy_llm)
        spec = TaskSpec.from_definition(task, support_positives=positives,
                                        support_negatives=[
                                            sample_profile(rng, fixed={"color": "green"})
                                            for _ in range(6)])
        result = pipeline.prepare(spec)
        # the fully-omitted graph was repaired from support examples
        assert len(result.kg) > 0

    def test_detect_and_evaluate(self, quantized_configuration):
        pipeline = ITaskPipeline(quantized_configuration)
        task = get_task("roadside_hazards")
        scenes = SceneGenerator(SceneConfig(), seed=9).generate_batch(2)
        spec = TaskSpec.from_definition(task)
        detections = pipeline.detect(spec, scenes[0])
        assert isinstance(detections, list)
        accuracy = pipeline.evaluate(spec, scenes)
        assert 0.0 <= accuracy <= 1.0

    def test_evaluate_requires_definition(self, quantized_configuration):
        pipeline = ITaskPipeline(quantized_configuration)
        spec = TaskSpec(name="adhoc", mission_text="find red markers")
        with pytest.raises(ValueError):
            pipeline.evaluate(spec, [])
