"""Detection metrics: matching, PR curves, AP, task accuracy plumbing."""

import numpy as np
import pytest

from repro.data.ontology import AttributeProfile
from repro.data.scenes import ObjectInstance
from repro.detect import (
    Detection,
    DetectionMetrics,
    average_precision,
    match_detections,
    precision_recall_curve,
)


def det(bbox, score):
    return Detection(bbox=bbox, score=score, objectness=score,
                     task_score=1.0, class_id=0, attribute_probs={})


def gt(bbox):
    profile = AttributeProfile("circle", "red", "small", "solid", "none")
    return ObjectInstance(profile=profile, bbox=bbox, category=None, cell=(0, 0))


class TestMatching:
    def test_perfect_match(self):
        hits, misses = match_detections([det((0, 0, 10, 10), 0.9)],
                                        [gt((0, 0, 10, 10))])
        assert hits == [True] and misses == 0

    def test_low_iou_no_match(self):
        hits, misses = match_detections([det((0, 0, 10, 10), 0.9)],
                                        [gt((50, 50, 60, 60))])
        assert hits == [False] and misses == 1

    def test_one_gt_matches_once(self):
        detections = [det((0, 0, 10, 10), 0.9), det((1, 1, 10, 10), 0.8)]
        hits, misses = match_detections(detections, [gt((0, 0, 10, 10))])
        assert hits == [True, False] and misses == 0

    def test_highest_score_matched_first(self):
        detections = [det((0, 0, 10, 10), 0.2), det((0, 0, 10, 10), 0.9)]
        hits, _ = match_detections(detections, [gt((0, 0, 10, 10))])
        assert hits == [False, True]

    def test_empty_detections(self):
        hits, misses = match_detections([], [gt((0, 0, 1, 1))])
        assert hits == [] and misses == 1


class TestCurvesAndAP:
    def test_perfect_detector_ap_one(self):
        precision, recall = precision_recall_curve(
            [0.9, 0.8], [True, True], num_positives=2)
        assert average_precision(precision, recall) == pytest.approx(1.0)

    def test_all_wrong_ap_zero(self):
        precision, recall = precision_recall_curve(
            [0.9, 0.8], [False, False], num_positives=2)
        assert average_precision(precision, recall) == 0.0

    def test_interleaved(self):
        precision, recall = precision_recall_curve(
            [0.9, 0.8, 0.7], [True, False, True], num_positives=2)
        ap = average_precision(precision, recall)
        assert 0.5 < ap < 1.0

    def test_no_positives(self):
        precision, recall = precision_recall_curve([0.5], [False], 0)
        assert average_precision(precision, recall) == 0.0

    def test_recall_monotone(self):
        rng = np.random.default_rng(0)
        scores = rng.random(20).tolist()
        hits = (rng.random(20) > 0.5).tolist()
        _, recall = precision_recall_curve(scores, hits, num_positives=10)
        assert (np.diff(recall) >= -1e-12).all()


class TestMetricsContainer:
    def test_derived_quantities(self):
        m = DetectionMetrics(true_positives=8, false_positives=2,
                             false_negatives=2, average_precision=0.8)
        assert m.precision == pytest.approx(0.8)
        assert m.recall == pytest.approx(0.8)
        assert m.f1 == pytest.approx(0.8)
        d = m.as_dict()
        assert d["tp"] == 8 and "ap" in d

    def test_zero_division_safe(self):
        m = DetectionMetrics(0, 0, 0, 0.0)
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0
