"""Accelerator area model."""

import pytest

from repro.hw import AcceleratorConfig, estimate_area, node_scale


class TestNodeScale:
    def test_reference_is_unity(self):
        assert node_scale(28.0) == pytest.approx(1.0)

    def test_smaller_node_smaller_area(self):
        assert node_scale(7.0) < node_scale(16.0) < node_scale(28.0)

    def test_quadratic(self):
        assert node_scale(14.0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            node_scale(0.0)


class TestEstimateArea:
    def test_breakdown_sums_to_total(self):
        report = estimate_area(AcceleratorConfig.edge_default())
        parts = report.breakdown()
        assert parts["total"] == pytest.approx(
            parts["array"] + parts["sram"] + parts["vector"]
            + parts["controller"])

    def test_plausible_magnitude(self):
        """An edge accelerator should be a few mm², not micro- or giant."""
        report = estimate_area(AcceleratorConfig.edge_default())
        assert 0.1 < report.total_mm2 < 20.0

    def test_bigger_array_bigger_area(self):
        small = estimate_area(AcceleratorConfig.small()).total_mm2
        default = estimate_area(AcceleratorConfig.edge_default()).total_mm2
        large = estimate_area(AcceleratorConfig.large()).total_mm2
        assert small < default < large

    def test_node_shrink(self):
        cfg = AcceleratorConfig.edge_default()
        assert (estimate_area(cfg, node_nm=7.0).total_mm2
                < estimate_area(cfg, node_nm=28.0).total_mm2)

    def test_summary_readable(self):
        report = estimate_area(AcceleratorConfig.edge_default())
        text = report.summary()
        assert "mm²" in text and "array" in text
