"""Obs v2: request contexts, sliding windows, mergeable snapshots,
Prometheus export, SLO burn rates, and tail-based exemplar sampling.

The merge-protocol tests are property-based (hypothesis): the whole
point of the fixed-point accumulators is that ``merge_snapshots`` is
associative, commutative, and bit-exact for *any* recording history,
so we assert dict equality over generated histories instead of
hand-picked examples.
"""

import json
import threading
import time
import types
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.context import (
    RequestContext,
    current_context,
    new_trace_id,
    request_context,
    use_context,
)
from repro.obs.export import (
    MERGE_SCHEMA,
    MetricsServer,
    merge_snapshots,
    mergeable_snapshot,
    prometheus_text,
    snapshot_delta,
    timer_state_stats,
)
from repro.obs.registry import FP_SCALE, Registry, get_registry
from repro.obs.sampler import (
    FLIGHT_SCHEMA,
    ExemplarSampler,
    FlightRecorder,
    ShedStormDetector,
    get_sampler,
    install_sampler,
)
from repro.obs.series import SeriesRecorder, WindowedSeries, merge_series_states
from repro.obs.slo import (
    SLO,
    default_slos,
    evaluate_live,
    evaluate_telemetry,
    format_statuses,
    load_slos,
)
from repro.obs.telemetry import build_telemetry, compare_telemetry, write_telemetry
from repro.serve.engine import DetectionEngine, EngineConfig, EngineRejected


@pytest.fixture()
def registry():
    return Registry("test")


@pytest.fixture()
def global_registry():
    """The process-wide registry the engine records into, reset around
    the test so concurrent-path assertions see only this test's spans."""
    reg = get_registry()
    reg.reset()
    try:
        yield reg
    finally:
        reg.reset()


# ----------------------------------------------------------------------
# Request context
# ----------------------------------------------------------------------
class TestRequestContext:
    def test_trace_ids_unique(self):
        ids = [new_trace_id() for _ in range(1000)]
        assert len(set(ids)) == 1000
        # pid-random-counter shape so cross-process merges cannot collide
        assert all(len(tid.split("-")) == 3 for tid in ids)

    def test_scope_sets_and_clears(self, registry):
        assert current_context() is None
        with request_context(registry=registry, tenant="acme",
                             mission="patrol") as ctx:
            active = current_context()
            assert active is not None
            assert active.trace_id == ctx.trace_id
            assert active.tenant == "acme"
            assert active.mission == "patrol"
        assert current_context() is None

    def test_root_span_opened_and_reparented(self, registry):
        with request_context(registry=registry, name="req",
                             tenant="acme") as ctx:
            # the yielded context carries the root span id so
            # worker-side spans can re-parent under it
            assert ctx.parent_span_id is not None
            with registry.span("child") as child:
                pass
        [root] = [s for s in registry.spans if s.name == "req"]
        assert root.span_id == ctx.parent_span_id
        assert root.trace_id == ctx.trace_id
        assert root.attrs["tenant"] == "acme"
        assert child.trace_id == ctx.trace_id
        assert child.parent_id == root.span_id

    def test_use_context_bridges_threads(self, registry):
        with request_context(registry=registry, name="req") as ctx:
            pass
        seen = {}

        def worker():
            seen["before"] = current_context()
            with use_context(ctx):
                with registry.span("hop") as span:
                    seen["inside"] = current_context()
                seen["span"] = span
            seen["after"] = current_context()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None and seen["after"] is None
        assert seen["inside"] is ctx
        # thread-root span re-parents under the request's root span
        assert seen["span"].trace_id == ctx.trace_id
        assert seen["span"].parent_id == ctx.parent_span_id

    def test_deadline_budget(self, registry):
        with request_context(registry=registry, deadline_ms=60_000) as ctx:
            remaining = ctx.remaining_s()
            assert 0.0 < remaining <= 60.0
            assert not ctx.expired()
        no_deadline = RequestContext(trace_id="t")
        assert no_deadline.remaining_s() is None
        assert not no_deadline.expired()
        blown = RequestContext(trace_id="t",
                               deadline_s=time.perf_counter() - 1.0)
        assert blown.expired()
        assert blown.remaining_s() < 0.0

    def test_explicit_trace_id_kept(self, registry):
        with request_context("my-trace", registry=registry) as ctx:
            assert ctx.trace_id == "my-trace"
        assert registry.spans_for_trace("my-trace")

    def test_record_span_feeds_timer_and_trace_index(self, registry):
        registry.record_span("engine.queue_wait", 0.0, 0.25,
                             trace_id="tid-1", parent_id=7)
        assert "engine.queue_wait" in registry.timers
        assert registry.timers["engine.queue_wait"].calls == 1
        [span] = registry.spans_for_trace("tid-1")
        assert span.parent_id == 7
        assert span.dur_us == pytest.approx(0.25e6)


# ----------------------------------------------------------------------
# Sliding-window series
# ----------------------------------------------------------------------
class TestWindowedSeries:
    BASE = 1_000_000.0

    def test_window_stats_scoped_to_window(self):
        series = WindowedSeries("stage")
        for dt, value in ((0.0, 0.1), (1.0, 0.2), (50.0, 0.4)):
            series.record(value, now=self.BASE + dt)
        now = self.BASE + 50.0
        recent = series.window_stats(10.0, now=now)
        assert recent["count"] == 1
        assert recent["max"] == pytest.approx(0.4)
        full = series.window_stats(120.0, now=now)
        assert full["count"] == 3
        assert full["rate_per_s"] == pytest.approx(3 / 120.0)
        assert full["min"] == pytest.approx(0.1)
        empty = series.window_stats(10.0, now=self.BASE + 500.0)
        assert empty["count"] == 0 and empty["p99"] == 0.0

    def test_ring_slot_eviction(self):
        series = WindowedSeries("stage", bucket_s=1.0, buckets=4)
        series.record(1.0, now=self.BASE)
        # same slot, four buckets later: the stale cell is overwritten
        series.record(2.0, now=self.BASE + 4.0)
        stats = series.window_stats(100.0, now=self.BASE + 4.0)
        assert stats["count"] == 1
        assert stats["min"] == pytest.approx(2.0)

    def test_recorder_mirrors_registry(self, registry):
        series = registry.attach_series(SeriesRecorder())
        with registry.span("stage"):
            pass
        registry.count("events", 3)
        registry.observe("batch", 8)
        live = series.snapshot(windows=(60.0,))
        window = live["windows"]["60s"]
        assert window["timers"]["stage"]["count"] == 1
        assert window["counters"]["events"]["amount"] == pytest.approx(3.0)
        assert window["values"]["batch"]["count"] == 1

    def test_merge_rejects_mixed_bucket_sizes(self):
        a = SeriesRecorder(bucket_s=1.0).merge_state()
        b = SeriesRecorder(bucket_s=2.0).merge_state()
        with pytest.raises(ValueError, match="bucket sizes"):
            merge_series_states([a, b])


# ----------------------------------------------------------------------
# Mergeable snapshot protocol (property-based)
# ----------------------------------------------------------------------
_values = st.lists(
    st.floats(min_value=1e-6, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    max_size=30)


def _shard_snapshot(values):
    reg = Registry("shard")
    for value in values:
        reg.timer("stage").record(value)
        reg.count("events", value)
        reg.distribution("size").record(value)
    return mergeable_snapshot(reg)


class TestMergeProtocol:
    @settings(max_examples=25, deadline=None)
    @given(a=_values, b=_values, c=_values)
    def test_merge_associative_and_commutative(self, a, b, c):
        sa, sb, sc = (_shard_snapshot(v) for v in (a, b, c))
        flat = merge_snapshots([sa, sb, sc])
        left = merge_snapshots([merge_snapshots([sa, sb]), sc])
        right = merge_snapshots([sa, merge_snapshots([sb, sc])])
        assert left == right == flat  # bit-exact dict equality
        assert merge_snapshots([sc, sa, sb]) == flat

    @settings(max_examples=25, deadline=None)
    @given(entries=st.lists(
        st.tuples(st.floats(min_value=1e-6, max_value=50.0,
                            allow_nan=False, allow_infinity=False),
                  st.integers(min_value=0, max_value=2)),
        max_size=40))
    def test_shard_split_bit_matches_single_process(self, entries):
        single = Registry("single")
        shards = [Registry(f"shard{i}") for i in range(3)]
        for value, shard in entries:
            for reg in (single, shards[shard]):
                reg.timer("stage").record(value)
                reg.count("events", value)
                reg.distribution("size").record(value)
        merged = merge_snapshots([mergeable_snapshot(r) for r in shards])
        assert merged == merge_snapshots([mergeable_snapshot(single)])

    @settings(max_examples=25, deadline=None)
    @given(entries=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=60.0,
                            allow_nan=False, allow_infinity=False),
                  st.floats(min_value=1e-6, max_value=10.0,
                            allow_nan=False, allow_infinity=False),
                  st.integers(min_value=0, max_value=2)),
        max_size=40))
    def test_series_shards_bit_match(self, entries):
        base = 1_000_000.0
        single = SeriesRecorder()
        shards = [SeriesRecorder() for _ in range(3)]
        for offset, value, shard in entries:
            now = base + offset
            single.record_timer("stage", value, now=now)
            shards[shard].record_timer("stage", value, now=now)
            single.record_counter("events", value, now=now)
            shards[shard].record_counter("events", value, now=now)
        merged = merge_series_states([s.merge_state() for s in shards])
        assert merged == merge_series_states([single.merge_state()])

    def test_merge_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="mergeable snapshot"):
            merge_snapshots([{"timers": {}}])

    def test_timer_state_stats_round_trip(self, registry):
        for value in (0.010, 0.020, 0.030, 0.200):
            registry.timer("stage").record(value)
        state = mergeable_snapshot(registry)["timers"]["stage"]
        stats = timer_state_stats(state)
        assert stats["calls"] == 4
        assert stats["total_s"] == pytest.approx(0.260)
        assert stats["min_s"] == pytest.approx(0.010)
        assert stats["max_s"] == pytest.approx(0.200)
        # log-bucket percentiles: ~12% bucket-edge tolerance
        assert stats["p99_s"] == pytest.approx(0.200, rel=0.15)

    def test_snapshot_delta_is_the_interval(self, registry):
        registry.timer("stage").record(0.010)
        registry.count("events", 2)
        before = mergeable_snapshot(registry)
        for _ in range(3):
            registry.timer("stage").record(0.020)
        registry.count("events", 5)
        registry.timer("fresh").record(0.5)
        delta = snapshot_delta(mergeable_snapshot(registry), before)
        assert delta["timers"]["stage"]["calls"] == 3
        assert delta["timers"]["stage"]["hist"]["count"] == 3
        assert delta["counters"]["events"]["value_fp"] == 5 * FP_SCALE
        # a stage that first appears mid-interval is all-new
        assert delta["timers"]["fresh"]["calls"] == 1


# ----------------------------------------------------------------------
# Prometheus exposition + HTTP surface
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_text_format_parses(self, registry):
        with registry.span("detect.total"):
            pass
        registry.count("engine.scenes", 7)
        registry.observe("engine.batch_size", 4)
        series = registry.attach_series(SeriesRecorder())
        registry.count("late", 1)  # lands in series too
        text = prometheus_text(registry, series=series)
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            float(value)  # every sample line ends in a parseable number
            assert name[0].isalpha() or name[0] == "_"
        assert 'repro_stage_duration_seconds{stage="detect.total"' in text
        assert 'repro_events_total{name="engine.scenes"} 7' in text
        assert "repro_value_summary" in text
        assert "repro_dropped_spans_total 0" in text
        assert "repro_stage_window_rate" in text  # live windowed gauges

    def test_label_escaping(self, registry):
        registry.count('odd"name\\with\nnewline')
        text = prometheus_text(registry)
        assert r'odd\"name\\with\nnewline' in text
        # the raw newline must not split the sample line
        [line] = [l for l in text.splitlines() if "odd" in l]
        assert line.endswith(" 1")

    def test_metrics_server_endpoints(self, registry):
        with registry.span("detect.total"):
            pass
        registry.count("engine.scenes", 3)
        series = registry.attach_series(SeriesRecorder())
        server = MetricsServer(registry, host="127.0.0.1", port=0,
                               series=series, slos=default_slos())
        with server:
            def fetch(path):
                with urllib.request.urlopen(server.url + path,
                                            timeout=5) as resp:
                    return resp.status, resp.headers.get("Content-Type"), \
                        resp.read().decode()

            status, ctype, body = fetch("/metrics")
            assert status == 200 and ctype.startswith("text/plain")
            assert "repro_stage_duration_seconds" in body

            status, _, body = fetch("/healthz")
            health = json.loads(body)
            assert status == 200 and health["status"] == "ok"
            assert health["dropped_spans"] == 0

            status, _, body = fetch("/slo")
            slo_doc = json.loads(body)
            assert status == 200 and isinstance(slo_doc["ok"], bool)
            assert {s["name"] for s in slo_doc["slos"]} == \
                {s.name for s in default_slos()}

            status, _, body = fetch("/snapshot")
            snap = json.loads(body)
            assert status == 200 and snap["schema"] == MERGE_SCHEMA
            # what /snapshot serves is a valid merge input
            merged = merge_snapshots([snap, snap])
            assert merged["timers"]["detect.total"]["calls"] == 2

            with pytest.raises(urllib.error.HTTPError):
                fetch("/nope")


# ----------------------------------------------------------------------
# SLOs: offline telemetry gates and live burn rates
# ----------------------------------------------------------------------
class TestSLOs:
    def _doc(self, registry):
        return build_telemetry("slo_test", registry=registry)

    def test_latency_budget_math(self, registry):
        # 1 bad sample in 100 with a p99 objective = exactly the budget
        timer = registry.timer("detect.total")
        for _ in range(99):
            timer.record(0.010)
        timer.record(2.0)
        slo = SLO(name="p99", kind="latency", stage="detect.total",
                  percentile=99.0, threshold_s=0.5)
        [status] = evaluate_telemetry([slo], self._doc(registry))
        assert status.ok and status.burn == pytest.approx(1.0)
        for _ in range(4):
            timer.record(2.0)
        [status] = evaluate_telemetry([slo], self._doc(registry))
        assert not status.ok and status.burn > 1.0

    def test_latency_stats_fallback_without_histogram(self):
        doc = {"obs": {"timers": {"detect.total": {"p99_s": 0.6}}}}
        slo = SLO(name="p99", kind="latency", stage="detect.total",
                  percentile=99.0, threshold_s=0.5)
        [status] = evaluate_telemetry([slo], doc)
        assert not status.ok
        assert "p99" in status.detail

    def test_missing_stage_is_ok_with_detail(self, registry):
        slo = SLO(name="p99", kind="latency", stage="never.recorded",
                  percentile=99.0, threshold_s=0.5)
        [status] = evaluate_telemetry([slo], self._doc(registry))
        assert status.ok and "not recorded" in status.detail

    def test_ratio_objective(self, registry):
        registry.count("cascade.shed", 3)
        registry.count("cascade.fast_path", 97)
        slo = SLO(name="shed", kind="ratio", bad=["cascade.shed"],
                  total=["cascade.fast_path", "cascade.shed"],
                  max_fraction=0.05)
        [status] = evaluate_telemetry([slo], self._doc(registry))
        assert status.ok and status.value == pytest.approx(0.03)
        registry.count("cascade.shed", 7)
        [status] = evaluate_telemetry([slo], self._doc(registry))
        assert not status.ok

    def test_relative_latency_is_machine_speed_free(self, registry):
        for _ in range(20):
            registry.timer("cascade.route").record(0.030)
            registry.timer("detect.batch_total").record(0.010)
        slo = SLO(name="overhead", kind="relative_latency",
                  stage="cascade.route", percentile=50.0,
                  reference_stage="detect.batch_total",
                  reference_percentile=50.0, max_ratio=6.0)
        [status] = evaluate_telemetry([slo], self._doc(registry))
        assert status.ok
        assert status.value == pytest.approx(3.0, rel=0.3)
        [tight] = evaluate_telemetry(
            [SLO(name="tight", kind="relative_latency",
                 stage="cascade.route", percentile=50.0,
                 reference_stage="detect.batch_total",
                 reference_percentile=50.0, max_ratio=2.0)],
            self._doc(registry))
        assert not tight.ok

    def test_live_burn_needs_both_windows(self):
        series = SeriesRecorder()
        now = 1_000_000.0
        slo = SLO(name="p99", kind="latency", stage="detect.total",
                  percentile=99.0, threshold_s=0.5)
        # sustained badness: every sample over threshold in both windows
        for i in range(50):
            series.record_timer("detect.total", 1.0, now=now - 10 - i * 0.1)
        [status] = evaluate_live([slo], registry=Registry("unused"),
                                 series=series, now=now)
        assert status.alerting and not status.ok
        assert set(status.windows) == {"60s", "600s"}
        # a fast-window blip over a healthy slow window must not page
        series = SeriesRecorder()
        for i in range(200):
            series.record_timer("detect.total", 0.01, now=now - 300 - i * 0.1)
        for i in range(5):
            series.record_timer("detect.total", 1.0, now=now - 5 - i * 0.1)
        [status] = evaluate_live([slo], registry=Registry("unused"),
                                 series=series, now=now)
        assert status.windows["60s"] >= slo.fast_burn
        assert status.windows["600s"] < slo.slow_burn
        assert not status.alerting and status.ok

    def test_config_loading_and_validation(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [
            {"name": "shed", "kind": "ratio", "bad": ["cascade.shed"],
             "total": ["cascade.shed", "cascade.fast_path"],
             "max_fraction": 0.1},
        ]}))
        [slo] = load_slos(str(path))
        assert slo.name == "shed" and slo.max_fraction == 0.1
        path.write_text(json.dumps({"slos": [
            {"name": "x", "kind": "ratio", "total": ["a"],
             "max_fraction": 0.1, "not_a_field": 1}]}))
        with pytest.raises(ValueError, match="unknown keys"):
            load_slos(str(path))
        path.write_text(json.dumps({"objectives": []}))
        with pytest.raises(ValueError, match="'slos'"):
            load_slos(str(path))
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLO(name="x", kind="availability")
        with pytest.raises(ValueError, match="latency needs"):
            SLO(name="x", kind="latency", stage="s")

    def test_format_statuses_flags_failures(self, registry):
        registry.count("cascade.shed", 10)
        registry.count("cascade.fast_path", 10)
        slo = SLO(name="shed", kind="ratio", bad=["cascade.shed"],
                  total=["cascade.fast_path", "cascade.shed"],
                  max_fraction=0.05)
        text = format_statuses(
            evaluate_telemetry([slo], self._doc(registry)))
        assert "FAIL" in text and "shed" in text


# ----------------------------------------------------------------------
# Tail-based sampling + flight recorder
# ----------------------------------------------------------------------
def _decision(route, trace_id, reason="queue"):
    return types.SimpleNamespace(route=route, trace_id=trace_id,
                                 reason=reason, margin=1.0, scene_index=0)


class TestSampler:
    def test_slow_k_keeps_the_slowest(self, tmp_path):
        sampler = ExemplarSampler(slow_k=3, artifact_dir=str(tmp_path))
        for i, duration in enumerate([0.5, 0.1, 0.9, 0.3, 0.7]):
            sampler.observe_request(f"t{i}", duration)
        kept = sampler.exemplars("slow")
        assert [e.value for e in kept] == [0.9, 0.7, 0.5]
        assert sampler.lookup("t2") is not None
        assert sampler.lookup("t1") is None  # fast request never retained
        assert sampler.lookup("t3") is None  # evicted by a slower one

    def test_per_reason_eviction_cleans_trace_index(self, tmp_path):
        sampler = ExemplarSampler(per_reason=2, artifact_dir=str(tmp_path))
        for i in range(3):
            sampler.offer(f"t{i}", "shed")
        kept = sampler.exemplars("shed")
        assert [e.trace_id for e in kept] == ["t1", "t2"]
        assert sampler.lookup("t0") is None
        assert sampler.lookup("t2") is not None

    def test_offer_resolves_spans_from_registry(self, registry, tmp_path):
        sampler = ExemplarSampler(artifact_dir=str(tmp_path))
        with request_context(registry=registry, name="req") as ctx:
            with registry.span("detect.total"):
                pass
        exemplar = sampler.offer(ctx.trace_id, "shed", registry=registry)
        assert {s["name"] for s in exemplar.spans} == {"req", "detect.total"}
        # late spans (engine execute after the scope closed) re-resolve
        registry.record_span("engine.execute", 0.0, 0.1,
                             trace_id=ctx.trace_id)
        sampler.resolve(registry)
        assert {s["name"] for s in sampler.lookup(ctx.trace_id).spans} == \
            {"req", "detect.total", "engine.execute"}

    def test_storm_detector_fires_once_per_storm(self):
        storm = ShedStormDetector(window=8, threshold=0.5, min_events=4)
        fired = [storm.update(True) for _ in range(6)]
        assert fired.count(True) == 1  # one page per storm, not per shed
        assert fired[3]  # on the crossing, once min_events is met
        for _ in range(8):
            storm.update(False)  # drain the window: re-arms
        assert storm.shed_fraction == 0.0
        assert [storm.update(True) for _ in range(8)].count(True) == 1

    def test_observe_route_dumps_one_storm_artifact(self, registry, tmp_path):
        sampler = ExemplarSampler(artifact_dir=str(tmp_path),
                                  storm_window=4, storm_threshold=0.5,
                                  storm_min_events=4)
        sampler.observe_route(
            [_decision("shed", f"t{i}") for i in range(4)], registry=registry)
        sampler.observe_route(
            [_decision("shed", "t9")], registry=registry)
        assert len(sampler.flight.dumps) == 1
        doc = json.loads(open(sampler.flight.dumps[0]).read())
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["reason"] == "shed_storm"
        assert {e.trace_id for e in sampler.exemplars("shed")} >= \
            {"t0", "t1", "t2", "t3"}
        kinds = [e["kind"] for e in doc["events"]]
        assert "shed_storm" in kinds and "route" in kinds

    def test_flight_ring_is_bounded(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        for i in range(6):
            flight.record("event", index=i)
        events = flight.events()
        assert [e["index"] for e in events] == [2, 3, 4, 5]
        path = flight.dump(str(tmp_path), "unit test/reason")
        assert "unit_test_reason" in path  # reason sanitized for filenames
        assert len(json.loads(open(path).read())["events"]) == 4

    def test_record_engine_error_dumps_artifact(self, registry, tmp_path):
        sampler = ExemplarSampler(artifact_dir=str(tmp_path))
        path = sampler.record_engine_error(
            RuntimeError("boom"), scenes=3, registry=registry,
            trace_ids=["t0", None, "t1"])
        doc = json.loads(open(path).read())
        assert doc["reason"] == "engine_error"
        assert {e["trace_id"] for e in doc["exemplars"]} == {"t0", "t1"}
        assert all(e["reason"] == "error" for e in doc["exemplars"])

    def test_install_sampler_returns_previous(self, tmp_path):
        first = ExemplarSampler(artifact_dir=str(tmp_path))
        original = install_sampler(first)
        try:
            assert get_sampler() is first
            second = ExemplarSampler(artifact_dir=str(tmp_path))
            assert install_sampler(second) is first
            assert get_sampler() is second
        finally:
            install_sampler(original)
        assert get_sampler() is original


# ----------------------------------------------------------------------
# Engine trace propagation across the queue hop
# ----------------------------------------------------------------------
class _EchoSession:
    """Duck-typed session: the engine only needs detect_batch."""

    def detect_batch(self, scenes, stride=None):
        time.sleep(0.001)
        return [("det", scene) for scene in scenes]


class _ContextSession(_EchoSession):
    def __init__(self):
        self.contexts = []

    def detect_batch(self, scenes, stride=None, contexts=None):
        self.contexts.append(list(contexts or []))
        return [("det", scene) for scene in scenes]


class _GatedSession:
    def __init__(self):
        self.gate = threading.Event()

    def detect_batch(self, scenes, stride=None):
        assert self.gate.wait(timeout=10.0)
        return [("det", scene) for scene in scenes]


class TestEngineTracing:
    def test_trace_survives_queue_hop_multiworker(self, global_registry):
        engine = DetectionEngine(_EchoSession(), EngineConfig(
            max_batch=4, flush_ms=2.0, workers=2, queue_size=32))
        futures = {}
        try:
            for i in range(12):
                with request_context(name="req", tenant=f"t{i}") as ctx:
                    futures[ctx.trace_id] = (i, engine.submit(i))
        finally:
            engine.close()
        for trace_id, (i, future) in futures.items():
            assert future.result(timeout=5) == ("det", i)
            spans = global_registry.spans_for_trace(trace_id)
            names = sorted(s.name for s in spans)
            # exactly one root + one queued interval + one fused execute,
            # regardless of which worker ran it or how batches formed
            assert names == ["engine.execute", "engine.queue_wait", "req"]
            [root] = [s for s in spans if s.name == "req"]
            assert all(s.parent_id == root.span_id for s in spans
                       if s.name != "req")
        assert "engine.queue_wait" in global_registry.timers
        assert global_registry.timers["engine.execute"].calls == 12

    def test_contexts_reach_a_context_aware_session(self, global_registry):
        session = _ContextSession()
        engine = DetectionEngine(session, EngineConfig(
            max_batch=4, flush_ms=2.0, workers=1, queue_size=32))
        submitted = []
        try:
            for i in range(6):
                with request_context(name="req") as ctx:
                    submitted.append(ctx.trace_id)
                    engine.submit(i)
        finally:
            engine.close()
        seen = [ctx.trace_id for batch in session.contexts
                for ctx in batch if ctx is not None]
        assert sorted(seen) == sorted(submitted)

    def test_nonblocking_submit_counts_rejections(self, global_registry):
        session = _GatedSession()
        engine = DetectionEngine(session, EngineConfig(
            max_batch=1, flush_ms=1.0, workers=1, queue_size=1))
        try:
            first = engine.submit(0)       # worker picks this up, blocks
            time.sleep(0.05)
            second = engine.submit(1)      # fills the 1-slot queue
            with pytest.raises(EngineRejected):
                engine.submit(2, block=False)
        finally:
            session.gate.set()
            engine.close()
        assert first.result(timeout=5) == ("det", 0)
        assert second.result(timeout=5) == ("det", 1)
        assert global_registry.counters["engine.rejected"].value == 1
        assert global_registry.counters["engine.scenes"].value == 2


# ----------------------------------------------------------------------
# Compare gate: missing stages + scoped share normalizer
# ----------------------------------------------------------------------
class TestCompareGate:
    def _doc(self, registry):
        with registry.span("detect.total"):
            with registry.span("detect.nms"):
                pass
        return build_telemetry("gate_test", registry=registry)

    def test_missing_baseline_stage_fails(self, registry):
        doc = self._doc(registry)
        renamed = json.loads(json.dumps(doc))
        renamed["obs"]["timers"]["detect.nms_v2"] = \
            renamed["obs"]["timers"].pop("detect.nms")
        comparison = compare_telemetry(doc, renamed)
        assert comparison.missing == ["detect.nms"]
        assert not comparison.ok
        assert "MISSING" in comparison.summary()
        # the new name is informational, not a regression
        assert "detect.nms_v2" in comparison.skipped

    def test_scoped_share_normalizer_ignores_new_stages(self, registry):
        doc = self._doc(registry)
        grown = json.loads(json.dumps(doc))
        # a giant new stage would dominate an unscoped share normalizer
        grown["obs"]["timers"]["huge.new"] = dict(
            grown["obs"]["timers"]["detect.total"])
        grown["obs"]["timers"]["huge.new"]["total_s"] = 1e6
        scoped = compare_telemetry(doc, grown, metric="share",
                                   stages=["detect.total", "detect.nms"])
        assert scoped.ok


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestObsV2Cli:
    @pytest.fixture()
    def shed_heavy_file(self, registry, tmp_path):
        registry.count("cascade.shed", 40)
        registry.count("cascade.fast_path", 60)
        with registry.span("detect.total"):
            pass
        doc = build_telemetry("slo_cli", registry=registry)
        path = tmp_path / "BENCH_slo_cli.json"
        write_telemetry(str(path), doc)
        return str(path)

    def test_slo_gate_exit_codes(self, shed_heavy_file, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "slo.json"
        config.write_text(json.dumps({"slos": [
            {"name": "shed-rate", "kind": "ratio", "bad": ["cascade.shed"],
             "total": ["cascade.fast_path", "cascade.shed"],
             "max_fraction": 0.05}]}))
        # advisory by default, hard failure under --gate
        assert main(["obs", "slo", shed_heavy_file,
                     "--config", str(config)]) == 0
        assert "FAIL" in capsys.readouterr().out
        assert main(["obs", "slo", shed_heavy_file,
                     "--config", str(config), "--gate"]) == 1
        config.write_text(json.dumps({"slos": [
            {"name": "shed-rate", "kind": "ratio", "bad": ["cascade.shed"],
             "total": ["cascade.fast_path", "cascade.shed"],
             "max_fraction": 0.5}]}))
        assert main(["obs", "slo", shed_heavy_file,
                     "--config", str(config), "--gate"]) == 0

    def test_compare_missing_stage_exit_code(self, registry, tmp_path, capsys):
        from repro.cli import main

        with registry.span("detect.total"):
            with registry.span("detect.nms"):
                pass
        doc = build_telemetry("cli_missing", registry=registry)
        base = tmp_path / "BENCH_base.json"
        write_telemetry(str(base), doc)
        current = json.loads(json.dumps(doc))
        del current["obs"]["timers"]["detect.nms"]
        cur = tmp_path / "BENCH_cur.json"
        cur.write_text(json.dumps(current))
        assert main(["obs", "compare", str(base), str(cur)]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_report_warns_on_dropped_spans(self, registry, tmp_path, capsys):
        from repro.cli import main

        with registry.span("detect.total"):
            pass
        doc = build_telemetry("cli_drop", registry=registry)
        doc["obs"]["dropped_spans"] = 17
        path = tmp_path / "BENCH_drop.json"
        path.write_text(json.dumps(doc))
        assert main(["obs", "report", str(path)]) == 0
        assert "17 span(s) dropped" in capsys.readouterr().out
