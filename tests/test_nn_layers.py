"""Layers: Linear, LayerNorm, Dropout, Embedding — semantics and gradients."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, Identity, LayerNorm, Linear
from repro.nn.init import (
    kaiming_uniform,
    truncated_normal,
    xavier_normal,
    xavier_uniform,
)
from repro.tensor import Tensor, check_gradient, randn


class TestLinear:
    def test_shapes(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(randn(2, 5, rng=np.random.default_rng(1)))
        assert out.shape == (2, 3)

    def test_batched_input(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(randn(2, 7, 5, rng=np.random.default_rng(1)))
        assert out.shape == (2, 7, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        x = np.zeros((1, 4), np.float32)
        np.testing.assert_array_equal(layer(Tensor(x)).data, np.zeros((1, 2)))

    def test_matches_manual(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        x = randn(3, 4, rng=np.random.default_rng(2))
        expected = x.data @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected, rtol=1e-5)

    def test_gradients(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        x = randn(2, 4, rng=np.random.default_rng(1), requires_grad=True)
        ok, err = check_gradient(lambda t: layer(t), [x])
        assert ok, err
        ok, err = check_gradient(lambda w: x @ w.T + layer.bias, [layer.weight])
        assert ok, err

    def test_weight_layout(self):
        layer = Linear(7, 3, rng=np.random.default_rng(0))
        assert layer.weight.shape == (3, 7)  # (out, in) for per-channel quant


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(16)
        x = randn(4, 16, rng=np.random.default_rng(0), scale=5.0)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_params_applied(self):
        ln = LayerNorm(4)
        ln.weight.data = np.full(4, 2.0, np.float32)
        ln.bias.data = np.full(4, 1.0, np.float32)
        x = randn(2, 4, rng=np.random.default_rng(0))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-4)

    def test_gradients(self):
        ln = LayerNorm(6)
        x = randn(3, 6, rng=np.random.default_rng(1), requires_grad=True)
        ok, err = check_gradient(lambda t: ln(t), [x])
        assert ok, err

    def test_constant_input_stable(self):
        ln = LayerNorm(8)
        out = ln(Tensor(np.full((2, 8), 3.0, np.float32))).data
        assert np.isfinite(out).all()


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = randn(4, 4, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_train_zeroes_fraction(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100), np.float32))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6

    def test_inverted_scaling(self):
        drop = Dropout(0.25, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200), np.float32))
        assert abs(drop(x).data.mean() - 1.0) < 0.02

    def test_p_zero_identity(self):
        drop = Dropout(0.0)
        x = randn(3, 3, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbeddingAndIdentity:
    def test_embedding_lookup(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[0], out.data[1])

    def test_embedding_gradient_accumulates_duplicates(self):
        emb = Embedding(5, 3, rng=np.random.default_rng(0))
        out = emb(np.array([2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 2.0 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_identity(self):
        x = randn(2, 2, rng=np.random.default_rng(0))
        assert Identity()(x) is x


class TestInitializers:
    def test_xavier_uniform_bound(self):
        w = xavier_uniform((100, 50), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        w = xavier_normal((400, 400), np.random.default_rng(0))
        assert abs(w.std() - np.sqrt(2.0 / 800)) < 2e-3

    def test_kaiming_finite(self):
        w = kaiming_uniform((64, 64), np.random.default_rng(0))
        assert np.isfinite(w).all()

    def test_truncated_normal_bounded(self):
        w = truncated_normal((1000,), np.random.default_rng(0), std=0.02)
        assert np.abs(w).max() <= 2.0 * 0.02 + 1e-9

    def test_deterministic_given_seed(self):
        a = xavier_uniform((8, 8), np.random.default_rng(3))
        b = xavier_uniform((8, 8), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
