"""Loss functions: values against manual computation, gradients, edge cases."""

import numpy as np
import pytest

from repro.nn import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    kl_divergence,
    l1_loss,
    mse_loss,
    soft_target_loss,
)
from repro.nn.losses import accuracy
from repro.tensor import Tensor, check_gradient, randn


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(np.array([[2.0, 1.0, 0.0], [0.0, 0.0, 5.0]], np.float32))
        targets = np.array([0, 2])
        loss = cross_entropy(logits, targets).item()
        probs = np.exp(logits.data) / np.exp(logits.data).sum(-1, keepdims=True)
        manual = -np.log([probs[0, 0], probs[1, 2]]).mean()
        assert loss == pytest.approx(manual, rel=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0]], np.float32))
        assert cross_entropy(logits, np.array([0])).item() < 1e-4

    def test_gradient(self):
        logits = randn(4, 5, rng=np.random.default_rng(0), requires_grad=True)
        targets = np.array([0, 1, 2, 3])
        ok, err = check_gradient(lambda t: cross_entropy(t, targets), [logits])
        assert ok, err

    def test_label_smoothing_increases_loss_on_confident(self):
        logits = Tensor(np.array([[50.0, 0.0, 0.0]], np.float32))
        plain = cross_entropy(logits, np.array([0])).item()
        smoothed = cross_entropy(logits, np.array([0]), label_smoothing=0.1).item()
        assert smoothed > plain

    def test_uniform_logits_log_c(self):
        logits = Tensor(np.zeros((2, 4), np.float32))
        assert cross_entropy(logits, np.array([1, 3])).item() == pytest.approx(
            np.log(4), rel=1e-5
        )

    def test_accepts_tensor_targets(self):
        logits = Tensor(np.zeros((2, 3), np.float32))
        loss = cross_entropy(logits, Tensor(np.array([0.0, 1.0])))
        assert np.isfinite(loss.item())


class TestRegressionLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 3.0], np.float32), requires_grad=True)
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(5.0)

    def test_mse_gradient(self):
        pred = randn(3, 3, rng=np.random.default_rng(0), requires_grad=True)
        target = np.zeros((3, 3), np.float32)
        ok, err = check_gradient(lambda p: mse_loss(p, target), [pred])
        assert ok, err

    def test_l1_value(self):
        pred = Tensor(np.array([2.0, -2.0], np.float32))
        assert l1_loss(pred, np.zeros(2)).item() == pytest.approx(2.0)

    def test_target_is_detached(self):
        pred = randn(2, 2, rng=np.random.default_rng(0), requires_grad=True)
        target = randn(2, 2, rng=np.random.default_rng(1), requires_grad=True)
        mse_loss(pred, target).backward()
        assert pred.grad is not None
        assert target.grad is None


class TestKLDivergence:
    def test_zero_when_identical(self):
        logits = randn(3, 4, rng=np.random.default_rng(0), requires_grad=True)
        kd = kl_divergence(logits, logits.data.copy(), temperature=2.0)
        assert kd.item() == pytest.approx(0.0, abs=1e-5)

    def test_positive_when_different(self):
        student = Tensor(np.array([[0.0, 1.0]], np.float32), requires_grad=True)
        teacher = np.array([[5.0, -5.0]], np.float32)
        assert kl_divergence(student, teacher).item() > 0.1

    def test_gradient(self):
        student = randn(3, 4, rng=np.random.default_rng(0), requires_grad=True)
        teacher = np.random.default_rng(1).standard_normal((3, 4)).astype(np.float32)
        ok, err = check_gradient(
            lambda s: kl_divergence(s, teacher, temperature=2.0), [student],
            atol=2e-2,
        )
        assert ok, err

    def test_temperature_scaling_bounded(self):
        """T² scaling keeps magnitudes comparable across temperatures."""
        student = Tensor(np.array([[0.0, 2.0, -1.0]], np.float32), requires_grad=True)
        teacher = np.array([[1.0, 0.0, 0.5]], np.float32)
        low = kl_divergence(student, teacher, temperature=1.0).item()
        high = kl_divergence(student, teacher, temperature=4.0).item()
        assert 0.05 < high / max(low, 1e-9) < 20.0

    def test_soft_target_mix(self):
        student = randn(2, 3, rng=np.random.default_rng(0), requires_grad=True)
        teacher = np.zeros((2, 3), np.float32)
        targets = np.array([0, 1])
        pure_ce = soft_target_loss(student, teacher, targets, alpha=0.0).item()
        assert pure_ce == pytest.approx(
            cross_entropy(student, targets).item(), rel=1e-5
        )
        pure_kd = soft_target_loss(student, teacher, targets, alpha=1.0).item()
        assert pure_kd == pytest.approx(
            kl_divergence(student, teacher, temperature=2.0).item(), rel=1e-5
        )


class TestBCEAndAccuracy:
    def test_bce_matches_manual(self):
        logits = Tensor(np.array([0.0, 2.0], np.float32))
        targets = np.array([1.0, 0.0], np.float32)
        expected = -(np.log(0.5) + np.log(1 - 1 / (1 + np.exp(-2.0)))) / 2
        assert binary_cross_entropy_with_logits(logits, targets).item() == pytest.approx(
            expected, rel=1e-4
        )

    def test_bce_gradient(self):
        logits = randn(5, rng=np.random.default_rng(0), requires_grad=True)
        targets = np.array([1, 0, 1, 0, 1], np.float32)
        ok, err = check_gradient(
            lambda t: binary_cross_entropy_with_logits(t, targets), [logits]
        )
        assert ok, err

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
