"""Vision-language baseline: tokenizer, towers, contrastive training."""

import numpy as np
import pytest

from repro.data import TASK_LIBRARY, get_task
from repro.tensor import Tensor
from repro.vlm import (
    Tokenizer,
    TwoTowerVLM,
    VLMConfig,
    VLMTrainer,
    VLMTrainingConfig,
    build_vlm_pairs,
)


@pytest.fixture(scope="module")
def tokenizer():
    return Tokenizer()


@pytest.fixture(scope="module")
def vlm(tokenizer):
    model = TwoTowerVLM(tokenizer, rng=np.random.default_rng(0))
    model.eval()
    return model


class TestTokenizer:
    def test_special_tokens(self, tokenizer):
        assert tokenizer.pad_id == 0
        assert tokenizer.vocab_size > 50

    def test_encode_shape_and_padding(self, tokenizer):
        ids = tokenizer.encode("find red markers")
        assert ids.shape == (tokenizer.max_length,)
        assert (ids[3:] == tokenizer.pad_id).all()

    def test_known_words_not_unk(self, tokenizer):
        ids = tokenizer.encode("red square")
        unk = tokenizer.vocab["<unk>"]
        assert unk not in ids[:2]

    def test_unknown_word_maps_to_unk(self, tokenizer):
        ids = tokenizer.encode("xylophone")
        assert ids[0] == tokenizer.vocab["<unk>"]

    def test_truncation(self, tokenizer):
        long_text = "red " * 100
        assert tokenizer.encode(long_text).shape == (tokenizer.max_length,)

    def test_batch(self, tokenizer):
        batch = tokenizer.encode_batch(["red", "blue square"])
        assert batch.shape == (2, tokenizer.max_length)


class TestTwoTower:
    def test_embeddings_normalized(self, vlm, tokenizer):
        rng = np.random.default_rng(1)
        images = Tensor(rng.random((3, 3, 32, 32)).astype(np.float32))
        img_emb = vlm.encode_images(images)
        np.testing.assert_allclose(
            (img_emb.data ** 2).sum(axis=-1), 1.0, rtol=1e-4)
        txt_emb = vlm.encode_texts(tokenizer.encode_batch(["red marker"]))
        np.testing.assert_allclose(
            (txt_emb.data ** 2).sum(axis=-1), 1.0, rtol=1e-4)

    def test_similarity_logits_shape(self, vlm, tokenizer):
        rng = np.random.default_rng(2)
        images = Tensor(rng.random((4, 3, 32, 32)).astype(np.float32))
        token_ids = tokenizer.encode_batch(["a", "b", "c"])
        logits = vlm.similarity_logits(images, token_ids)
        assert logits.shape == (4, 3)

    def test_score_windows(self, vlm):
        rng = np.random.default_rng(3)
        windows = rng.random((5, 3, 32, 32)).astype(np.float32)
        scores = vlm.score_windows(windows, "find red markers")
        assert scores.shape == (5,)
        assert (np.abs(scores) <= 1.0 + 1e-5).all()

    def test_padding_invariance(self, vlm, tokenizer):
        """Mean pooling must ignore pad positions: same text, different
        amounts of padding, same embedding."""
        short = tokenizer.encode_batch(["red square"])
        long_tok = Tokenizer(max_length=tokenizer.max_length)
        same = long_tok.encode_batch(["red square"])
        a = vlm.encode_texts(short).data
        b = vlm.encode_texts(same).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_flops_accounting(self, vlm):
        assert vlm.flops_per_query() > vlm.image_encoder.backbone.flops_per_image()


class TestTraining:
    def test_pairs_are_positive(self):
        tasks = [get_task(n) for n in list(TASK_LIBRARY)[:3]]
        pools = build_vlm_pairs(tasks, seed=0, positives_per_task=20)
        assert set(pools) == {t.name for t in tasks}
        for images in pools.values():
            assert images.shape[0] == 20

    def test_loss_decreases(self, tokenizer):
        model = TwoTowerVLM(tokenizer, rng=np.random.default_rng(4))
        tasks = [get_task(n) for n in list(TASK_LIBRARY)[:4]]
        trainer = VLMTrainer(model, tasks, VLMTrainingConfig(steps=40, seed=0))
        history = trainer.train()
        assert np.mean(history[-10:]) < np.mean(history[:10])

    def test_training_aligns_pairs(self, tokenizer):
        """After brief training, a mission's positives score higher
        against their own text than against another mission's."""
        model = TwoTowerVLM(tokenizer, rng=np.random.default_rng(5))
        tasks = [get_task("stop_control"), get_task("cargo_audit")]
        trainer = VLMTrainer(model, tasks, VLMTrainingConfig(steps=80, seed=0))
        trainer.train()
        pools = trainer._pools
        own = model.score_windows(pools["stop_control"][:20],
                                  tasks[0].mission_text).mean()
        cross = model.score_windows(pools["stop_control"][:20],
                                    tasks[1].mission_text).mean()
        assert own > cross

    def test_needs_two_tasks(self, tokenizer):
        model = TwoTowerVLM(tokenizer, rng=np.random.default_rng(6))
        with pytest.raises(ValueError):
            VLMTrainer(model, [get_task("stop_control")])
