"""Graph matcher: scoring semantics, vetoes, monotonicity (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.ontology import ATTRIBUTE_FAMILIES, AttributeProfile, attribute_index
from repro.kg import Constraint, ConstraintKind, GraphMatcher, KnowledgeGraph


def make_kg(*constraints):
    kg = KnowledgeGraph("t")
    for kind, family, values, weight in constraints:
        kg.add_constraint(Constraint(kind, family, frozenset(values), weight))
    return kg


def uniform_probs(batch=1):
    return {
        family: np.full((batch, len(vocab)), 1.0 / len(vocab))
        for family, vocab in ATTRIBUTE_FAMILIES.items()
    }


def concentrated(family, value, batch=1, mass=1.0):
    probs = uniform_probs(batch)
    vocab = ATTRIBUTE_FAMILIES[family]
    row = np.full(len(vocab), (1.0 - mass) / (len(vocab) - 1))
    row[attribute_index(family, value)] = mass
    probs[family] = np.tile(row, (batch, 1))
    return probs


class TestScoring:
    def test_satisfied_requires_scores_high(self):
        kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        score = GraphMatcher(kg).match_distributions(
            concentrated("color", "red")).score[0]
        assert score > 0.95

    def test_violated_requires_scores_low(self):
        kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        score = GraphMatcher(kg).match_distributions(
            concentrated("color", "blue")).score[0]
        assert score < 0.05

    def test_excludes_veto(self):
        kg = make_kg((ConstraintKind.EXCLUDES, "size", {"small"}, 1.0))
        low = GraphMatcher(kg).match_distributions(
            concentrated("size", "small")).score[0]
        high = GraphMatcher(kg).match_distributions(
            concentrated("size", "large")).score[0]
        assert low < 0.05 < 0.9 < high

    def test_prefers_never_vetoes(self):
        kg = make_kg(
            (ConstraintKind.REQUIRES, "color", {"red"}, 1.0),
            (ConstraintKind.PREFERS, "shape", {"diamond"}, 1.0),
        )
        matcher = GraphMatcher(kg, preference_gamma=0.15)
        not_preferred = concentrated("color", "red")
        not_preferred["shape"] = concentrated("shape", "circle")["shape"]
        score = matcher.match_distributions(not_preferred).score[0]
        assert score > 0.5  # dispreferred shape only dampens

    def test_prefers_boosts_relative(self):
        kg = make_kg(
            (ConstraintKind.REQUIRES, "color", {"red"}, 1.0),
            (ConstraintKind.PREFERS, "shape", {"diamond"}, 1.0),
        )
        matcher = GraphMatcher(kg)
        preferred = concentrated("color", "red")
        preferred["shape"] = concentrated("shape", "diamond")["shape"]
        other = concentrated("color", "red")
        other["shape"] = concentrated("shape", "circle")["shape"]
        assert (matcher.match_distributions(preferred).score[0]
                > matcher.match_distributions(other).score[0])

    def test_no_constraints_accepts_all(self):
        kg = KnowledgeGraph("t")
        score = GraphMatcher(kg).match_distributions(uniform_probs()).score[0]
        assert score == pytest.approx(1.0)

    def test_missing_family_treated_uniform(self):
        kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        score = GraphMatcher(kg).match_distributions({}).score[0]
        assert score == pytest.approx(1.0 / len(ATTRIBUTE_FAMILIES["color"]), rel=1e-3)

    def test_batched_scores(self):
        kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        probs = uniform_probs(batch=3)
        result = GraphMatcher(kg).match_distributions(probs)
        assert result.score.shape == (3,)

    def test_weight_modulates_strictness(self):
        """Lower weight softens a violated requirement's penalty."""
        strict = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0),
                         (ConstraintKind.REQUIRES, "shape", {"ring"}, 1.0))
        soft = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0),
                       (ConstraintKind.REQUIRES, "shape", {"ring"}, 0.2))
        probs = concentrated("color", "red")
        probs["shape"] = concentrated("shape", "circle", mass=0.9)["shape"]
        assert (GraphMatcher(soft).match_distributions(probs).score[0]
                > GraphMatcher(strict).match_distributions(probs).score[0])

    def test_profiles_background_scores_zero(self):
        kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        profile = AttributeProfile("circle", "red", "small", "solid", "none")
        result = GraphMatcher(kg).match_profiles([profile, None])
        assert result.score[0] > 0.9
        assert result.score[1] == 0.0

    def test_explain_readable(self):
        kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        text = GraphMatcher(kg).explain(concentrated("color", "red"))
        assert "requires:color" in text and "score=" in text

    def test_parameter_validation(self):
        kg = KnowledgeGraph("t")
        with pytest.raises(ValueError):
            GraphMatcher(kg, preference_gamma=1.0)

    def test_overweight_prefers_clamped_to_zero(self):
        """Regression: weight > 1/gamma made the preference factor
        negative, and two violated preferences multiplied back positive —
        a fully-violated preference could *raise* the score.

        ``Constraint`` validates weight <= 1 at construction, so forge
        over-weighted constraints (as a corrupted or legacy-serialized
        graph would carry) to exercise the matcher's own guard.
        """

        def forged(kind, family, values, weight):
            c = Constraint(kind, family, frozenset(values), 1.0)
            object.__setattr__(c, "weight", weight)
            return c

        base = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        one = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        one.add_constraint(forged(ConstraintKind.PREFERS, "shape",
                                  {"diamond"}, 10.0))
        two = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        two.add_constraint(forged(ConstraintKind.PREFERS, "shape",
                                  {"diamond"}, 10.0))
        two.add_constraint(forged(ConstraintKind.PREFERS, "size",
                                  {"large"}, 10.0))
        probs = concentrated("color", "red")
        probs["shape"] = concentrated("shape", "circle")["shape"]
        probs["size"] = concentrated("size", "small")["size"]
        s_base = GraphMatcher(base).match_distributions(probs).score[0]
        s_one = GraphMatcher(one).match_distributions(probs).score[0]
        s_two = GraphMatcher(two).match_distributions(probs).score[0]
        # each factor clamps to [0, 1]: more violated preferences can only
        # lower the score, never raise it back up
        assert s_one <= s_base + 1e-12
        assert s_two <= s_one + 1e-12
        assert s_two == pytest.approx(0.0, abs=1e-9)

    def test_plan_tracks_kg_edits(self):
        """The precomputed index plan must refresh when the KG changes."""
        kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
        matcher = GraphMatcher(kg)
        before = matcher.match_distributions(concentrated("color", "blue")).score[0]
        # merging {blue} into the same (REQUIRES, color) edge keeps the
        # constraint count identical — only the version bump reveals it
        kg.add_constraint(Constraint(ConstraintKind.REQUIRES, "color",
                                     frozenset({"blue"}), 1.0))
        after = matcher.match_distributions(concentrated("color", "blue")).score[0]
        assert after > 0.9 > before


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
def test_requires_score_monotone_in_mass(m1, m2):
    """More probability mass on the allowed set ⇒ score no lower."""
    kg = make_kg((ConstraintKind.REQUIRES, "color", {"red"}, 1.0))
    matcher = GraphMatcher(kg)
    lo, hi = sorted([m1, m2])
    s_lo = matcher.match_distributions(concentrated("color", "red", mass=lo)).score[0]
    s_hi = matcher.match_distributions(concentrated("color", "red", mass=hi)).score[0]
    assert s_hi >= s_lo - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0))
def test_score_always_in_unit_interval(mass):
    kg = make_kg(
        (ConstraintKind.REQUIRES, "color", {"red"}, 0.8),
        (ConstraintKind.EXCLUDES, "size", {"small"}, 0.6),
        (ConstraintKind.PREFERS, "shape", {"ring"}, 0.5),
    )
    probs = concentrated("color", "red", mass=mass)
    score = GraphMatcher(kg).match_distributions(probs).score[0]
    assert 0.0 <= score <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(list(ATTRIBUTE_FAMILIES["color"])))
def test_profile_match_agrees_with_set_membership(value):
    kg = make_kg((ConstraintKind.REQUIRES, "color", {"red", "orange"}, 1.0))
    profile = AttributeProfile("circle", value, "small", "solid", "none")
    score = GraphMatcher(kg).match_profiles([profile]).score[0]
    assert (score >= 0.5) == (value in {"red", "orange"})
