"""End-to-end detection evaluation paths and edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import SceneConfig, SceneGenerator, build_task_windows, get_task
from repro.detect import TaskDetector, evaluate_task_detection, window_task_accuracy
from repro.detect.metrics import task_accuracy
from repro.kg import GraphMatcher, SimulatedLLM
from repro.quant import QuantizedLinear, QuantSpec, compute_qparams
from repro.nn import Linear


class TestEvaluateTaskDetection:
    @pytest.fixture(scope="class")
    def setup(self, student_vit):
        task = get_task("roadside_hazards")
        matcher = GraphMatcher(SimulatedLLM().generate_for_task(task))
        scenes = SceneGenerator(SceneConfig(), seed=31).generate_batch(4)
        return task, matcher, scenes

    def test_metrics_consistent(self, student_vit, setup):
        task, matcher, scenes = setup
        detector = TaskDetector(student_vit, matcher, score_threshold=0.3)
        metrics = evaluate_task_detection(detector, scenes, task)
        total_relevant = sum(
            sum(task.matches(o.profile) for o in s.objects) for s in scenes)
        assert metrics.true_positives + metrics.false_negatives == total_relevant
        assert 0.0 <= metrics.average_precision <= 1.0

    def test_never_firing_detector(self, student_vit, setup):
        task, matcher, scenes = setup
        detector = TaskDetector(student_vit, matcher, score_threshold=1.0)
        metrics = evaluate_task_detection(detector, scenes, task)
        assert metrics.true_positives == 0
        assert metrics.false_positives == 0
        assert metrics.recall == 0.0

    def test_always_firing_detector_has_full_recall(self, student_vit, setup):
        task, matcher, scenes = setup
        detector = TaskDetector(student_vit, matcher=None, score_threshold=0.0)
        metrics = evaluate_task_detection(detector, scenes, task)
        assert metrics.recall == pytest.approx(1.0)

    def test_object_cells_only_no_easier(self, student_vit, setup):
        """Restricting to object cells removes the trivially-correct
        background cells, so accuracy can only drop or stay equal for a
        conservative detector."""
        task, matcher, scenes = setup
        detector = TaskDetector(student_vit, matcher, score_threshold=0.9)
        full = task_accuracy(detector, scenes, task)
        hard = task_accuracy(detector, scenes, task, object_cells_only=True)
        assert hard <= full + 1e-9

    def test_window_accuracy_requires_labels(self, student_vit, tiny_dataset):
        with pytest.raises(ValueError):
            window_task_accuracy(student_vit, tiny_dataset)

    def test_threshold_monotonicity_of_fires(self, student_vit, setup):
        task, matcher, scenes = setup
        low = TaskDetector(student_vit, matcher, score_threshold=0.1)
        high = TaskDetector(student_vit, matcher, score_threshold=0.6)
        assert len(low.detect(scenes[0])) >= len(high.detect(scenes[0]))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=2, max_value=8),
)
def test_quantized_linear_error_bound_property(in_features, out_features, bits):
    """Output error of the integer kernel is bounded by first-order
    quantization error propagation for any layer geometry."""
    rng = np.random.default_rng(in_features * 100 + out_features)
    linear = Linear(in_features, out_features, rng=rng)
    x = rng.standard_normal((4, in_features)).astype(np.float32)
    act_params = compute_qparams(float(x.min()), float(x.max()),
                                 QuantSpec(bits=8, symmetric=False))
    qlinear = QuantizedLinear.from_linear(
        linear, act_params,
        QuantSpec(bits=bits, symmetric=True, per_channel=True, axis=0))
    y_float = x @ linear.weight.data.T + linear.bias.data
    y_quant = qlinear(x)
    # bound: |Δ| ≤ Σ_k (|x|·Δw + |w|·Δx + Δx·Δw); use a loose constant ×
    # the per-element scales
    act_step = float(act_params.scale)
    w_step = float(np.max(qlinear.weight_params.scale))
    bound = in_features * (
        np.abs(x).max() * w_step / 2
        + np.abs(linear.weight.data).max() * act_step / 2
        + act_step * w_step / 4
    ) * 2.0 + 1e-4
    assert np.abs(y_quant - y_float).max() <= bound
