"""SimulatedLLM: text → graph extraction, noise model."""

import numpy as np
import pytest

from repro.data import TASK_LIBRARY, get_task, sample_profile
from repro.kg import (
    ConstraintKind,
    GraphMatcher,
    KnowledgeGraph,
    LLMNoiseConfig,
    SimulatedLLM,
)


class TestExtraction:
    def test_positive_clause_becomes_requires(self):
        kg = SimulatedLLM().generate("t", "Find red and blue markers.")
        constraint = kg.get(ConstraintKind.REQUIRES, "color")
        assert constraint is not None
        assert constraint.values == {"red", "blue"}

    def test_negated_clause_becomes_excludes(self):
        kg = SimulatedLLM().generate("t", "Find markers. Ignore small ones.")
        assert kg.get(ConstraintKind.EXCLUDES, "size").values == {"small"}

    def test_hedged_clause_becomes_prefers(self):
        kg = SimulatedLLM().generate(
            "t", "Find red containers. They are typically square."
        )
        prefers = kg.get(ConstraintKind.PREFERS, "shape")
        assert prefers is not None and prefers.values == {"square"}
        # hedge must NOT become a hard requirement
        assert kg.get(ConstraintKind.REQUIRES, "shape") is None

    def test_hedge_on_required_family_ignored(self):
        kg = SimulatedLLM().generate(
            "t", "Find red markers. They are usually red."
        )
        assert kg.get(ConstraintKind.PREFERS, "color") is None

    def test_multiple_families(self):
        kg = SimulatedLLM().generate(
            "t", "Locate large cyan square crates with a dotted pattern."
        )
        assert kg.get(ConstraintKind.REQUIRES, "color").values == {"cyan"}
        assert kg.get(ConstraintKind.REQUIRES, "shape").values == {"square"}
        assert kg.get(ConstraintKind.REQUIRES, "size").values == {"large"}
        assert kg.get(ConstraintKind.REQUIRES, "texture").values == {"dotted"}

    def test_no_vocabulary_no_constraints(self):
        kg = SimulatedLLM().generate("t", "Find all the interesting things.")
        assert len(kg) == 0

    def test_deterministic_without_noise(self):
        a = SimulatedLLM().generate("t", "red square")
        b = SimulatedLLM().generate("t", "red square")
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("name", list(TASK_LIBRARY))
    def test_library_extraction_matches_predicate(self, name):
        """For every library task the clean text→KG→match pipeline agrees
        with the ground-truth predicate on random profiles."""
        task = get_task(name)
        kg = SimulatedLLM().generate_for_task(task)
        matcher = GraphMatcher(kg)
        rng = np.random.default_rng(0)
        profiles = [sample_profile(rng) for _ in range(300)]
        truth = np.array([task.matches(p) for p in profiles])
        predicted = matcher.match_profiles(profiles).score >= 0.5
        assert (predicted == truth).mean() == 1.0


class TestNoise:
    def test_noise_config_validation(self):
        with pytest.raises(ValueError):
            LLMNoiseConfig(omission_rate=1.5)

    def test_omission_drops_constraints(self):
        llm = SimulatedLLM(LLMNoiseConfig(omission_rate=1.0, seed=0))
        kg = llm.generate("t", "red square large dotted")
        assert len(kg) == 0

    def test_hallucination_adds_constraints(self):
        llm = SimulatedLLM(LLMNoiseConfig(hallucination_rate=1.0, seed=0))
        kg = llm.generate("t", "no attribute words here")
        # one hallucinated REQUIRES per family
        assert len(kg) == 5

    def test_hallucination_respects_existing(self):
        llm = SimulatedLLM(LLMNoiseConfig(hallucination_rate=1.0, seed=0))
        kg = llm.generate("t", "red markers")
        constraint = kg.get(ConstraintKind.REQUIRES, "color")
        assert constraint.values == {"red"}  # real extraction untouched

    def test_weight_jitter_bounds(self):
        llm = SimulatedLLM(LLMNoiseConfig(weight_jitter=0.5, seed=1))
        kg = llm.generate("t", "red square large")
        for constraint in kg.constraints:
            assert 0.05 <= constraint.weight <= 1.0

    def test_noise_reproducible_by_seed(self):
        a = SimulatedLLM(LLMNoiseConfig(omission_rate=0.5, seed=3)).generate(
            "t", "red square large dotted thick"
        )
        b = SimulatedLLM(LLMNoiseConfig(omission_rate=0.5, seed=3)).generate(
            "t", "red square large dotted thick"
        )
        assert a.to_dict() == b.to_dict()
