"""Differential fuzzer: generators, oracles, shrinker, corpus, campaign.

The pre-fix reproduction tests re-introduce each fixed streaming bug as
a *legacy* implementation injected through the execution context, then
assert that the bug's committed corpus scenario trips the matching
oracle — the guarantee that reverting any of the four fixes turns the
seed corpus red.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.detect.pipeline import predict_windows, score_predictions
from repro.fuzz import (
    ModelCache,
    ScenarioSpec,
    build_context,
    generate_scenario,
    iter_corpus,
    load_case,
    replay_case,
    run_campaign,
    run_scenario,
    save_case,
    shrink_spec,
    spec_from_case,
)
from repro.fuzz.operators import all_operators
from repro.fuzz.runner import failing_oracles
from repro.fuzz.scenario import shift_deaths_early
from repro.fuzz.shrinker import candidate_shrinks
from repro.stream.metrics import StreamingMetrics
from repro.stream.sequence import FrameState
from repro.stream.tracker import StreamingDetector, Track


@pytest.fixture(scope="module")
def model_cache():
    """One model LRU shared across the module (construction is seeded)."""
    return ModelCache()


@pytest.fixture(scope="module")
def corpus():
    cases = list(iter_corpus())
    assert cases, "committed seed corpus is missing"
    return {path.stem: spec for path, spec in cases}


# ----------------------------------------------------------------------
# generator determinism and validity
# ----------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_same_scenario(self):
        for seed in (0, 1, 17, 123):
            assert generate_scenario(seed) == generate_scenario(seed)

    def test_seeds_produce_diverse_scenarios(self):
        specs = {generate_scenario(seed) for seed in range(30)}
        assert len(specs) > 20

    def test_generated_specs_are_valid_and_materialize(self):
        for seed in range(25):
            spec = generate_scenario(seed)
            scenes = spec.build_scenes()
            frames = spec.build_frames()
            assert len(scenes) == spec.num_scenes
            assert len(frames) == spec.num_frames
            assert len(spec.frame_grids) == spec.num_frames

    def test_ops_provenance_recorded(self):
        spec = generate_scenario(5)
        names = {op.name for op in all_operators()}
        assert spec.ops and set(spec.ops) <= names

    def test_workloads_are_deterministic(self):
        a, b = generate_scenario(9), generate_scenario(9)
        for scene_a, scene_b in zip(a.build_scenes(), b.build_scenes()):
            np.testing.assert_array_equal(scene_a.image, scene_b.image)
        for frame_a, frame_b in zip(a.build_frames(), b.build_frames()):
            np.testing.assert_array_equal(frame_a.scene.image,
                                          frame_b.scene.image)
            assert frame_a.deaths == frame_b.deaths

    def test_spec_json_roundtrip(self):
        for seed in range(10):
            spec = generate_scenario(seed)
            payload = json.loads(json.dumps(spec.to_json_dict()))
            assert ScenarioSpec.from_json_dict(payload) == spec

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(num_frames=0)
        with pytest.raises(ValueError):
            ScenarioSpec(num_frames=2, grid_schedule=(1,))
        with pytest.raises(ValueError):
            ScenarioSpec(on_threshold=0.2, off_threshold=0.4)

    def test_shift_deaths_early(self):
        spec = ScenarioSpec(num_frames=3, grid_schedule=(1, 1, 1))
        frames = spec.build_frames()
        # independent frames: frame k's objects die on frame k itself
        for state in frames:
            assert set(state.object_ids) <= set(state.deaths)

    def test_shift_deaths_early_is_shape_preserving(self):
        states = [
            FrameState(index=i, scene=None, object_ids=[i],
                       births=[i], deaths=([i - 1] if i else []))
            for i in range(3)
        ]
        shifted = shift_deaths_early(states)
        assert [s.deaths for s in shifted] == [[0], [1], []]


# ----------------------------------------------------------------------
# shrinker
# ----------------------------------------------------------------------
class TestShrinker:
    def test_candidates_are_valid_specs(self):
        for seed in range(10):
            for candidate in candidate_shrinks(generate_scenario(seed)):
                assert isinstance(candidate, ScenarioSpec)

    def test_converges_to_minimal_failing_spec(self):
        spec = generate_scenario(2)
        spec = dataclasses.replace(spec, num_frames=6, grid_schedule=(),
                                   early_deaths=True, num_scenes=4)

        def still_fails(candidate):
            return candidate.num_frames >= 3 and candidate.early_deaths

        shrunk = shrink_spec(spec, still_fails)
        assert still_fails(shrunk)
        assert shrunk.num_frames == 3
        assert shrunk.num_scenes == 1
        assert shrunk.early_deaths

    def test_returns_input_when_nothing_shrinks(self):
        spec = generate_scenario(3)
        assert shrink_spec(spec, lambda candidate: False) == spec

    def test_terminates_within_check_budget(self):
        spec = generate_scenario(4)
        calls = []

        def always_fails(candidate):
            calls.append(candidate)
            return True

        shrink_spec(spec, always_fails, max_checks=25)
        assert len(calls) <= 25

    def test_deterministic(self):
        spec = generate_scenario(6)

        def still_fails(candidate):
            return candidate.num_frames >= 2

        assert shrink_spec(spec, still_fails) == shrink_spec(spec, still_fails)


# ----------------------------------------------------------------------
# corpus + oracle agreement
# ----------------------------------------------------------------------
BUG_CASES = ("bug_zero_cells", "bug_stale_aging", "bug_fused_aliasing",
             "bug_early_death_metrics", "bug_stale_specialist_graph")


class TestCorpus:
    def test_bug_cases_present(self, corpus):
        assert set(BUG_CASES) <= set(corpus)

    def test_case_files_roundtrip(self, tmp_path, model_cache, corpus):
        result = run_scenario(corpus["bug_zero_cells"], cache=model_cache)
        path = save_case(tmp_path, result, name="roundtrip")
        case = load_case(path)
        assert spec_from_case(case) == corpus["bug_zero_cells"]
        assert case["divergences"] == []

    def test_save_case_never_overwrites(self, tmp_path, model_cache, corpus):
        result = run_scenario(corpus["bug_zero_cells"], cache=model_cache)
        first = save_case(tmp_path, result, name="dup")
        second = save_case(tmp_path, result, name="dup")
        assert first != second and first.exists() and second.exists()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "spec": {}}))
        with pytest.raises(ValueError):
            load_case(path)

    @pytest.mark.parametrize("name", BUG_CASES)
    def test_seed_corpus_agrees_on_fixed_code(self, name, corpus, model_cache):
        """Every oracle passes on the committed bug scenarios today."""
        result = run_scenario(corpus[name], cache=model_cache)
        assert result.ok, [d.message for d in result.divergences]

    def test_coverage_cases_agree(self, corpus, model_cache):
        for name, spec in corpus.items():
            if name.startswith("coverage_"):
                result = run_scenario(spec, cache=model_cache)
                assert result.ok, (name,
                                   [d.message for d in result.divergences])

    def test_coverage_cases_match_generator(self, corpus):
        """coverage_seedN is exactly what the generator emits for seed N."""
        for name, spec in corpus.items():
            if name.startswith("coverage_seed"):
                seed = int(name.removeprefix("coverage_seed"))
                assert generate_scenario(seed) == spec


# ----------------------------------------------------------------------
# pre-fix reproduction: legacy implementations must trip the oracles
# ----------------------------------------------------------------------
class LegacyStackDetector(StreamingDetector):
    """Seed ``_cells_and_windows``: ``np.stack`` on a possibly-empty list."""

    @staticmethod
    def _cells_and_windows(scene):
        cells, windows = [], []
        for row, col, _bbox, window in scene.iter_cells():
            cells.append((row, col))
            windows.append(window)
        return cells, np.stack(windows)


class LegacyAgingDetector(StreamingDetector):
    """Seed ``_advance``: unobserved cells keep stale EMAs and never age."""

    def _advance(self, raw):
        self._frame += 1
        cfg = self.config
        for cell, score in raw.items():
            previous = self._ema.get(cell, score)
            self._ema[cell] = (cfg.smoothing * previous
                               + (1 - cfg.smoothing) * float(score))
        for cell, smoothed in self._ema.items():
            track = self._tracks.get(cell)
            if track is None or not track.active:
                if smoothed >= cfg.on_threshold:
                    track = Track(track_id=self._next_track_id, cell=cell,
                                  first_frame=self._frame,
                                  last_frame=self._frame, score=smoothed)
                    self._next_track_id += 1
                    self._tracks[cell] = track
                    self._history.append(track)
                continue
            track.score = smoothed
            if smoothed >= cfg.off_threshold:
                track.last_frame = self._frame
                track.missed = 0
            else:
                track.missed += 1
                if track.missed > cfg.max_missed_frames:
                    track.active = False
        return self.active_tracks()


class LegacyAliasDetector(StreamingDetector):
    """Seed ``update_many``: per-frame snapshots share mutable Tracks."""

    def update_many(self, scenes):
        scenes = list(scenes)
        if not scenes:
            return []
        per_frame_cells, parts = [], []
        for scene in scenes:
            cells, windows = self._cells_and_windows(scene)
            per_frame_cells.append(cells)
            parts.append(windows)
        nonempty = [p for p in parts if p.shape[0]]
        all_windows = (np.concatenate(nonempty, axis=0) if nonempty
                       else parts[0])
        predictions = predict_windows(self.model, all_windows,
                                      batch_size=self.batch_size)
        _, _, combined = score_predictions(predictions, self.matcher)
        snapshots, start = [], 0
        for cells in per_frame_cells:
            stop = start + len(cells)
            raw = dict(zip(cells, combined[start:stop]))
            snapshots.append(list(self._advance(raw)))  # aliased snapshot
            start = stop
        return snapshots


def legacy_evaluate_stream(detector, sequence, task, num_frames=40):
    """Seed ``evaluate_stream``: collects ``dead`` but never consults it."""
    correct = total = flips = 0
    previous, birth, detect = {}, {}, {}
    dead, relevant_ids = set(), set()
    for state in sequence.frames(num_frames):
        scene = state.scene
        fired = {t.cell for t in detector.update(scene)}
        relevant = {}
        for obj, obj_id in zip(scene.objects, state.object_ids):
            if task.matches(obj.profile):
                relevant[obj.cell] = obj_id
                relevant_ids.add(obj_id)
                birth.setdefault(obj_id, state.index)
        dead.update(state.deaths)
        for row in range(scene.grid):
            for col in range(scene.grid):
                cell = (row, col)
                decision = cell in fired
                correct += int(decision == (cell in relevant))
                total += 1
                if cell in previous and previous[cell] != decision:
                    flips += 1
                previous[cell] = decision
        for cell, obj_id in relevant.items():
            if cell in fired and obj_id not in detect:  # pre-fix: no dead check
                detect[obj_id] = state.index
    latencies = [detect[i] - birth[i] for i in detect if i in birth]
    return StreamingMetrics(
        frame_accuracy=correct / max(total, 1),
        mean_detection_latency=(float(np.mean(latencies)) if latencies
                                else float("nan")),
        detected_fraction=len(detect) / max(len(relevant_ids), 1),
        flicker_rate=flips / max(total, 1),
        frames=num_frames,
    )


class TestPreFixReproduction:
    """Each corpus bug scenario fails when its fix is reverted."""

    def _run_with_legacy(self, spec, model_cache, stream_cls=None,
                         evaluate_fn=None):
        context = build_context(spec, model_cache)
        if stream_cls is not None:
            context.stream_cls = stream_cls
        if evaluate_fn is not None:
            context.evaluate_fn = evaluate_fn
        return run_scenario(spec, context=context)

    def test_zero_cell_crash_reproduces(self, corpus, model_cache):
        result = self._run_with_legacy(corpus["bug_zero_cells"], model_cache,
                                       stream_cls=LegacyStackDetector)
        assert not result.ok
        assert any(d.message.startswith("crash:")
                   for d in result.divergences)

    def test_stale_aging_reproduces(self, corpus, model_cache):
        result = self._run_with_legacy(corpus["bug_stale_aging"], model_cache,
                                       stream_cls=LegacyAgingDetector)
        assert "stream_invariants" in failing_oracles(result)
        assert any("survives" in d.message for d in result.divergences)

    def test_fused_aliasing_reproduces(self, corpus, model_cache):
        result = self._run_with_legacy(corpus["bug_fused_aliasing"],
                                       model_cache,
                                       stream_cls=LegacyAliasDetector)
        assert "stream_fused" in failing_oracles(result)

    def test_post_death_metrics_reproduces(self, corpus, model_cache):
        result = self._run_with_legacy(corpus["bug_early_death_metrics"],
                                       model_cache,
                                       evaluate_fn=legacy_evaluate_stream)
        assert failing_oracles(result) == ("stream_metrics",)
        assert any(d.details.get("metric") == "detected_fraction"
                   for d in result.divergences)

    def test_stale_specialist_graph_reproduces(self, corpus, model_cache,
                                               monkeypatch):
        """Version-only mission fingerprints serve stale sessions.

        Neutering the graph content digest reverts the fingerprint to
        its legacy (name, version) form; the pinned scenario replaces a
        registered specialist graph with an equal-version different-
        content one and the pipeline_session oracle must catch the
        session cache serving the pre-replacement decision.
        """
        import repro.serve.session as serve_session

        monkeypatch.setattr(serve_session, "_graph_digest", lambda kg: "")
        result = run_scenario(corpus["bug_stale_specialist_graph"],
                              cache=model_cache)
        assert "pipeline_session" in failing_oracles(result)
        assert any("graph_replacement_invalidation" in d.message
                   for d in result.divergences)


# ----------------------------------------------------------------------
# campaign + replay
# ----------------------------------------------------------------------
class TestCampaignAndReplay:
    def test_small_campaign_is_clean(self):
        report = run_campaign(seed=0, budget=8, artifacts_dir=None)
        assert report.ok and report.executed == 8

    def test_replay_is_deterministic(self, corpus, model_cache):
        case = {"schema": 1, "spec": corpus["bug_stale_aging"].to_json_dict()}
        first = replay_case(case, cache=model_cache)
        second = replay_case(case, cache=model_cache)
        assert first.as_dict() == second.as_dict()
        assert first.ok

    def test_replay_respects_recorded_oracle_subset(self, corpus, model_cache):
        case = {"schema": 1,
                "spec": corpus["bug_zero_cells"].to_json_dict(),
                "oracles": ["stream_invariants"]}
        result = replay_case(case, cache=model_cache)
        assert result.oracles_run == ("stream_invariants",)

    def test_campaign_records_and_shrinks_divergences(self, tmp_path,
                                                      monkeypatch):
        """A failing oracle produces a shrunk, replayable case file."""
        import repro.fuzz.runner as runner_module

        def broken_oracle(spec, ctx):
            from repro.fuzz.oracles import Divergence
            if spec.num_frames >= 2:
                return [Divergence("broken", "synthetic failure")]
            return []

        monkeypatch.setattr(runner_module, "ORACLES",
                            (("broken", broken_oracle),))
        report = run_campaign(seed=0, budget=1,
                              artifacts_dir=str(tmp_path))
        assert not report.ok
        assert len(report.case_paths) == 1
        case = load_case(report.case_paths[0])
        assert case["divergences"][0]["oracle"] == "broken"
        # the shrinker drove the workload to its failure boundary
        shrunk = spec_from_case(case)
        assert shrunk.num_frames == 2
        assert shrunk.num_scenes == 1
        # and the recorded case replays to the same divergence
        replayed = replay_case(case)
        assert failing_oracles(replayed) == ("broken",)

    def test_crash_in_build_is_recorded_not_raised(self, monkeypatch):
        import repro.fuzz.runner as runner_module

        def exploding_context(spec, cache=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(runner_module, "build_context",
                            exploding_context)
        result = runner_module.run_scenario(generate_scenario(0))
        assert not result.ok
        assert result.divergences[0].oracle == "build"
        assert "boom" in result.divergences[0].message
