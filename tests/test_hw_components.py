"""Vector unit, memory model, ISA containers, energy table."""

import numpy as np
import pytest
from scipy import special

from repro.hw import (
    AcceleratorConfig,
    DmaDirection,
    DmaOp,
    EnergyTable,
    GemmOp,
    MemoryModel,
    Program,
    VectorKind,
    VectorOp,
    VectorUnit,
    gelu_lut,
)
from repro.hw.vector_unit import GELU_LUT_RANGE, default_passes


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(array_rows=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(clock_mhz=0)

    def test_derived_quantities(self):
        cfg = AcceleratorConfig(array_rows=16, array_cols=16, clock_mhz=500)
        assert cfg.peak_macs_per_cycle == 256
        assert cfg.peak_int8_tops == pytest.approx(2 * 256 * 500e6 / 1e12)
        assert cfg.cycles_to_seconds(500e6) == pytest.approx(1.0)

    def test_presets_ordered_by_size(self):
        assert (AcceleratorConfig.small().peak_macs_per_cycle
                < AcceleratorConfig.edge_default().peak_macs_per_cycle
                < AcceleratorConfig.large().peak_macs_per_cycle)

    def test_energy_mac_scales_with_bits(self):
        table = EnergyTable()
        assert table.mac_pj(4, 8) < table.mac_pj(8, 8) < table.mac_pj(16, 16)


class TestIsa:
    def test_gemm_op_accounting(self):
        op = GemmOp("g", m=4, k=8, n=16, weight_bits=8, act_bits=8)
        assert op.macs == 4 * 8 * 16
        assert op.act_bytes == 4 * 8
        assert op.weight_bytes == 8 * 16
        assert op.out_bytes == 4 * 16 * 4

    def test_gemm_bit_scaling(self):
        op4 = GemmOp("g", m=4, k=8, n=16, weight_bits=4)
        assert op4.weight_bytes == 8 * 16 // 2

    def test_op_validation(self):
        with pytest.raises(ValueError):
            GemmOp("g", m=0, k=1, n=1)
        with pytest.raises(ValueError):
            VectorOp("v", VectorKind.ADD, elements=0)
        with pytest.raises(ValueError):
            DmaOp("d", DmaDirection.LOAD, num_bytes=0)

    def test_program_aggregates(self):
        program = Program("p")
        program.append(GemmOp("g1", m=2, k=3, n=4))
        program.append(VectorOp("v1", VectorKind.ADD, elements=10, passes=2))
        program.append(DmaOp("d1", DmaDirection.LOAD, num_bytes=100))
        assert program.total_macs() == 24
        assert program.total_vector_elements() == 20
        assert program.total_dma_bytes() == 100
        assert program.counts() == {"gemm": 1, "vector": 1, "dma": 1}
        assert "1 GEMMs" in program.summary()
        assert len(program) == 3


class TestVectorUnit:
    def test_cycles_scale_with_elements(self):
        vu = VectorUnit(AcceleratorConfig())
        small = vu.op_cycles(VectorOp("v", VectorKind.ADD, elements=32))
        large = vu.op_cycles(VectorOp("v", VectorKind.ADD, elements=3200))
        assert large > small * 10

    def test_passes_multiply_cost(self):
        vu = VectorUnit(AcceleratorConfig())
        one = vu.op_cycles(VectorOp("v", VectorKind.ADD, elements=128, passes=1))
        three = vu.op_cycles(VectorOp("v", VectorKind.SOFTMAX, elements=128, passes=3))
        assert three == 3 * one

    def test_default_passes(self):
        assert default_passes(VectorKind.LAYERNORM) == 3
        assert default_passes(VectorKind.GELU) == 1


class TestGeluLut:
    def test_accuracy_in_range(self):
        x = np.linspace(GELU_LUT_RANGE[0], GELU_LUT_RANGE[1], 4001)
        exact = 0.5 * x * (1 + special.erf(x / np.sqrt(2)))
        assert np.abs(gelu_lut(x) - exact).max() < 1e-2

    def test_saturation_outside_range(self):
        assert gelu_lut(np.array([100.0]))[0] == pytest.approx(100.0)
        assert gelu_lut(np.array([-100.0]))[0] == 0.0

    def test_monotone_for_positive(self):
        x = np.linspace(0, 8, 100)
        y = gelu_lut(x)
        assert (np.diff(y) >= -1e-7).all()


class TestMemoryModel:
    def test_dma_cycles_include_latency(self):
        cfg = AcceleratorConfig()
        mem = MemoryModel(cfg)
        timing = mem.dma_cycles(DmaOp("d", DmaDirection.LOAD, num_bytes=1))
        assert timing.cycles >= cfg.dram_latency_cycles + 1

    def test_dma_bandwidth_bound(self):
        cfg = AcceleratorConfig(dram_gbps=8.0, clock_mhz=500.0)
        mem = MemoryModel(cfg)
        num_bytes = 16_000_000
        timing = mem.dma_cycles(DmaOp("d", DmaDirection.LOAD, num_bytes=num_bytes))
        min_cycles = num_bytes / cfg.dram_bytes_per_cycle
        assert timing.cycles >= min_cycles

    def test_capacity_checks(self):
        cfg = AcceleratorConfig(weight_sram_kib=1)  # 1 KiB
        mem = MemoryModel(cfg)
        assert mem.weights_fit(1024)
        assert not mem.weights_fit(1025)
        with pytest.raises(ValueError):
            mem.check_layer(weight_bytes=2048, act_bytes=0, out_bytes=0)
