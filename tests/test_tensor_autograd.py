"""Finite-difference verification of every differentiable tensor op."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    cat,
    check_gradient,
    clip,
    erf,
    exp,
    gelu,
    log,
    log_softmax,
    maximum,
    minimum,
    randn,
    relu,
    sigmoid,
    softmax,
    sqrt,
    stack,
    tanh,
    where,
)
from repro.tensor.ops import embedding

RNG = np.random.default_rng(42)


def _t(*shape, positive=False, scale=1.0):
    data = RNG.standard_normal(shape) * scale
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data.astype(np.float32), requires_grad=True)


def assert_grad(fn, inputs, wrt=0, **kwargs):
    ok, err = check_gradient(fn, inputs, wrt=wrt, **kwargs)
    assert ok, f"gradient mismatch, max abs err {err}"


class TestArithmetic:
    def test_add(self):
        assert_grad(lambda a, b: a + b, [_t(3, 4), _t(3, 4)])

    def test_add_broadcast_rows(self):
        assert_grad(lambda a, b: a + b, [_t(3, 4), _t(4)], wrt=1)

    def test_add_broadcast_scalar_tensor(self):
        assert_grad(lambda a, b: a + b, [_t(3, 4), _t(1, 1)], wrt=1)

    def test_radd_scalar(self):
        assert_grad(lambda a: 2.5 + a, [_t(3, 4)])

    def test_sub(self):
        assert_grad(lambda a, b: a - b, [_t(2, 3), _t(2, 3)], wrt=1)

    def test_rsub(self):
        assert_grad(lambda a: 1.0 - a, [_t(2, 3)])

    def test_neg(self):
        assert_grad(lambda a: -a, [_t(5)])

    def test_mul(self):
        assert_grad(lambda a, b: a * b, [_t(3, 4), _t(3, 4)], wrt=0)

    def test_mul_broadcast(self):
        assert_grad(lambda a, b: a * b, [_t(2, 3, 4), _t(4)], wrt=1)

    def test_div(self):
        assert_grad(lambda a, b: a / b, [_t(3, 3), _t(3, 3, positive=True)], wrt=0)

    def test_div_wrt_denominator(self):
        assert_grad(lambda a, b: a / b, [_t(3, 3), _t(3, 3, positive=True)], wrt=1)

    def test_pow(self):
        assert_grad(lambda a: a ** 3, [_t(3, 4)])

    def test_pow_fractional(self):
        assert_grad(lambda a: a ** 0.5, [_t(3, 4, positive=True)])

    def test_abs(self):
        # keep values away from the kink at 0
        t = Tensor(np.array([[1.0, -2.0], [3.0, -0.7]], np.float32), requires_grad=True)
        assert_grad(lambda a: a.abs(), [t])


class TestMatmul:
    def test_2d(self):
        assert_grad(lambda a, b: a @ b, [_t(3, 4), _t(4, 5)], wrt=0)
        assert_grad(lambda a, b: a @ b, [_t(3, 4), _t(4, 5)], wrt=1)

    def test_batched_left(self):
        assert_grad(lambda a, b: a @ b, [_t(2, 3, 4), _t(4, 5)], wrt=0)

    def test_batched_right_broadcast(self):
        assert_grad(lambda a, b: a @ b, [_t(2, 3, 4), _t(4, 5)], wrt=1)

    def test_batched_both(self):
        assert_grad(lambda a, b: a @ b, [_t(2, 3, 4), _t(2, 4, 5)], wrt=1)

    def test_vector_vector(self):
        assert_grad(lambda a, b: a @ b, [_t(4), _t(4)], wrt=0)

    def test_matrix_vector(self):
        assert_grad(lambda a, b: a @ b, [_t(3, 4), _t(4)], wrt=0)
        assert_grad(lambda a, b: a @ b, [_t(3, 4), _t(4)], wrt=1)


class TestElementwise:
    def test_exp(self):
        assert_grad(exp, [_t(3, 4, scale=0.5)])

    def test_log(self):
        assert_grad(log, [_t(3, 4, positive=True)])

    def test_sqrt(self):
        assert_grad(sqrt, [_t(3, 4, positive=True)])

    def test_tanh(self):
        assert_grad(tanh, [_t(3, 4)])

    def test_sigmoid(self):
        assert_grad(sigmoid, [_t(3, 4)])

    def test_relu(self):
        t = Tensor((RNG.standard_normal((4, 4)) + 0.01).astype(np.float32),
                   requires_grad=True)
        assert_grad(relu, [t])

    def test_erf(self):
        assert_grad(erf, [_t(3, 4)])

    def test_gelu_exact(self):
        assert_grad(lambda x: gelu(x), [_t(3, 4)])

    def test_gelu_tanh(self):
        assert_grad(lambda x: gelu(x, approximate=True), [_t(3, 4)])

    def test_clip(self):
        assert_grad(lambda x: clip(x, -0.5, 0.5), [_t(4, 4)])

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        assert_grad(lambda a, b: where(cond, a, b), [_t(3, 4), _t(3, 4)], wrt=0)
        assert_grad(lambda a, b: where(cond, a, b), [_t(3, 4), _t(3, 4)], wrt=1)

    def test_maximum(self):
        a, b = _t(3, 4), _t(3, 4)
        assert_grad(lambda x, y: maximum(x, y), [a, b], wrt=0)

    def test_minimum(self):
        a, b = _t(3, 4), _t(3, 4)
        assert_grad(lambda x, y: minimum(x, y), [a, b], wrt=1)


class TestReductionsAndShape:
    def test_sum_all(self):
        assert_grad(lambda a: a.sum(), [_t(3, 4)])

    def test_sum_axis_keepdims(self):
        assert_grad(lambda a: a.sum(axis=1, keepdims=True), [_t(3, 4)])

    def test_sum_axis_tuple(self):
        assert_grad(lambda a: a.sum(axis=(0, 2)), [_t(2, 3, 4)])

    def test_mean(self):
        assert_grad(lambda a: a.mean(axis=0), [_t(3, 4)])

    def test_var(self):
        assert_grad(lambda a: a.var(axis=1), [_t(3, 4)])

    def test_max(self):
        data = RNG.permutation(12).reshape(3, 4).astype(np.float32)
        t = Tensor(data, requires_grad=True)
        assert_grad(lambda a: a.max(axis=1), [t])

    def test_min(self):
        data = RNG.permutation(12).reshape(3, 4).astype(np.float32)
        t = Tensor(data, requires_grad=True)
        assert_grad(lambda a: a.min(axis=0), [t])

    def test_reshape(self):
        assert_grad(lambda a: a.reshape(2, 6), [_t(3, 4)])

    def test_flatten(self):
        assert_grad(lambda a: a.flatten(start_dim=1), [_t(2, 3, 4)])

    def test_transpose(self):
        assert_grad(lambda a: a.T, [_t(3, 4)])

    def test_permute(self):
        assert_grad(lambda a: a.permute(2, 0, 1), [_t(2, 3, 4)])

    def test_getitem_slice(self):
        assert_grad(lambda a: a[1:, ::2], [_t(3, 4)])

    def test_getitem_int(self):
        assert_grad(lambda a: a[1], [_t(3, 4)])

    def test_getitem_advanced(self):
        idx = np.array([0, 2, 2])
        assert_grad(lambda a: a[idx], [_t(3, 4)])

    def test_pad2d(self):
        assert_grad(lambda a: a.pad2d((1, 2, 0, 1)), [_t(2, 3, 4)])

    def test_cat(self):
        assert_grad(lambda a, b: cat([a, b], axis=1), [_t(3, 2), _t(3, 5)], wrt=1)

    def test_stack(self):
        assert_grad(lambda a, b: stack([a, b], axis=0), [_t(3, 4), _t(3, 4)], wrt=0)

    def test_embedding(self):
        table = _t(6, 4)
        idx = np.array([0, 5, 2, 2])
        assert_grad(lambda t: embedding(t, idx), [table])


class TestNormalizers:
    def test_softmax(self):
        assert_grad(lambda a: softmax(a, axis=-1), [_t(4, 5)])

    def test_softmax_axis0(self):
        assert_grad(lambda a: softmax(a, axis=0), [_t(4, 5)])

    def test_log_softmax(self):
        # slightly looser tolerance: the log of a float32 softmax loses a
        # couple of bits relative to the other ops
        assert_grad(lambda a: log_softmax(a), [_t(4, 5)], atol=3e-2)


class TestGraphMechanics:
    def test_reused_tensor_accumulates(self):
        a = _t(3, 3)
        out = a * a + a
        out.backward(np.ones((3, 3), np.float32))
        expected = 2 * a.data + 1
        np.testing.assert_allclose(a.grad, expected, rtol=1e-5)

    def test_diamond_graph(self):
        a = _t(2, 2)
        b = a * 2.0
        c = a * 3.0
        out = (b + c).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 5.0), rtol=1e-6)

    def test_grad_accumulates_across_backward_calls(self):
        a = _t(2, 2)
        (a * 1.0).sum().backward()
        first = a.grad.copy()
        (a * 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_backward_requires_grad(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_shape_check(self):
        a = _t(2, 3)
        out = a * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones((3, 2), np.float32))

    def test_detach_cuts_graph(self):
        a = _t(2, 2)
        out = (a.detach() * 3.0).sum()
        assert not out.requires_grad

    def test_long_chain(self):
        a = _t(2, 2, scale=0.1)
        x = a
        for _ in range(30):
            x = x + a * 0.01
        x.sum().backward()
        assert a.grad is not None
        np.testing.assert_allclose(a.grad, np.full((2, 2), 1.3), rtol=1e-4)
