"""Quantization parameter math + hypothesis round-trip error bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    QuantParams,
    QuantSpec,
    compute_qparams,
    dequantize_array,
    fake_quantize_array,
    quantize_array,
)
from repro.quant.qparams import channel_minmax, quantization_error


class TestQuantSpec:
    def test_bit_validation(self):
        with pytest.raises(ValueError):
            QuantSpec(bits=1)
        with pytest.raises(ValueError):
            QuantSpec(bits=17)

    def test_symmetric_range(self):
        spec = QuantSpec(bits=8, symmetric=True)
        assert spec.qmin == -127 and spec.qmax == 127

    def test_asymmetric_range(self):
        spec = QuantSpec(bits=8, symmetric=False)
        assert spec.qmin == 0 and spec.qmax == 255

    def test_storage_dtype(self):
        assert QuantSpec(bits=8, symmetric=True).storage_dtype() == np.int8
        assert QuantSpec(bits=8, symmetric=False).storage_dtype() == np.uint8
        assert QuantSpec(bits=16, symmetric=True).storage_dtype() == np.int16

    def test_low_bit_ranges(self):
        spec = QuantSpec(bits=2, symmetric=True)
        assert spec.qmin == -1 and spec.qmax == 1


class TestComputeQparams:
    def test_symmetric_zero_point_is_zero(self):
        params = compute_qparams(-3.0, 5.0, QuantSpec(bits=8, symmetric=True))
        assert params.zero_point == 0
        assert params.scale == pytest.approx(5.0 / 127)

    def test_asymmetric_covers_range(self):
        spec = QuantSpec(bits=8, symmetric=False)
        params = compute_qparams(-1.0, 3.0, spec)
        # both extremes representable within one step
        assert abs(float(dequantize_array(
            quantize_array(np.array(-1.0), params), params)) - (-1.0)) <= float(params.scale)
        assert abs(float(dequantize_array(
            quantize_array(np.array(3.0), params), params)) - 3.0) <= float(params.scale)

    def test_range_always_includes_zero(self):
        """min/max both positive still yields a grid containing zero."""
        spec = QuantSpec(bits=8, symmetric=False)
        params = compute_qparams(2.0, 5.0, spec)
        zero_hat = dequantize_array(quantize_array(np.zeros(1), params), params)
        assert abs(float(zero_hat[0])) <= float(params.scale)

    def test_degenerate_range(self):
        params = compute_qparams(0.0, 0.0, QuantSpec(bits=8, symmetric=True))
        assert params.scale > 0  # eps floor, no divide-by-zero

    def test_per_channel_shapes(self):
        spec = QuantSpec(bits=8, symmetric=True, per_channel=True, axis=0)
        lo = np.array([-1.0, -2.0, -0.5])
        hi = np.array([1.0, 2.0, 0.5])
        params = compute_qparams(lo, hi, spec)
        assert params.scale.shape == (3,)
        assert params.scale[1] == pytest.approx(2 * params.scale[0])

    def test_scale_positive_enforced(self):
        with pytest.raises(ValueError):
            QuantParams(QuantSpec(), np.array(0.0), np.array(0))


class TestRoundTrip:
    def test_int8_reconstruction_error(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000).astype(np.float32)
        spec = QuantSpec(bits=8, symmetric=True)
        params = compute_qparams(x.min(), x.max(), spec)
        err = np.abs(x - fake_quantize_array(x, params))
        assert err.max() <= float(params.scale) / 2 + 1e-7

    def test_quantize_respects_bounds(self):
        spec = QuantSpec(bits=4, symmetric=True)
        params = compute_qparams(-1.0, 1.0, spec)
        q = quantize_array(np.linspace(-10, 10, 100), params)
        assert q.min() >= spec.qmin and q.max() <= spec.qmax

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(100).astype(np.float32)
        params = compute_qparams(x.min(), x.max(), QuantSpec(bits=8))
        once = fake_quantize_array(x, params)
        twice = fake_quantize_array(once, params)
        np.testing.assert_allclose(once, twice, atol=1e-6)

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(2000).astype(np.float32)
        errors = []
        for bits in (2, 4, 8, 12):
            spec = QuantSpec(bits=bits, symmetric=True)
            params = compute_qparams(x.min(), x.max(), spec)
            errors.append(quantization_error(x, params))
        assert errors == sorted(errors, reverse=True)

    def test_per_channel_beats_per_tensor(self):
        """Channels with very different ranges favor per-channel scales."""
        rng = np.random.default_rng(3)
        w = np.stack([rng.standard_normal(64) * s for s in (0.01, 1.0, 100.0)])
        pt_spec = QuantSpec(bits=8, symmetric=True)
        pc_spec = QuantSpec(bits=8, symmetric=True, per_channel=True, axis=0)
        pt = compute_qparams(w.min(), w.max(), pt_spec)
        lo, hi = channel_minmax(w, 0)
        pc = compute_qparams(lo, hi, pc_spec)
        assert quantization_error(w, pc) < quantization_error(w, pt)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(np.float32, st.integers(min_value=2, max_value=64),
               elements=st.floats(min_value=-100, max_value=100, width=32,
                                  allow_nan=False)),
    st.integers(min_value=2, max_value=16),
    st.booleans(),
)
def test_roundtrip_error_bounded_by_half_scale(x, bits, symmetric):
    """|x − dq(q(x))| ≤ scale/2 for any in-range input (hypothesis)."""
    spec = QuantSpec(bits=bits, symmetric=symmetric)
    params = compute_qparams(float(x.min()), float(x.max()), spec)
    err = np.abs(x - fake_quantize_array(x, params))
    assert err.max() <= float(params.scale) / 2 + 1e-4


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(np.float32, 32,
               elements=st.floats(min_value=-50, max_value=50, width=32,
                                  allow_nan=False)),
    st.integers(min_value=2, max_value=16),
)
def test_quantized_codes_within_spec_range(x, bits):
    spec = QuantSpec(bits=bits, symmetric=False)
    params = compute_qparams(float(x.min()), float(x.max()), spec)
    q = quantize_array(x, params)
    assert q.min() >= spec.qmin and q.max() <= spec.qmax
