"""Box utilities + hypothesis invariants for IoU and NMS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.detect import box_area, box_iou, clip_box, nms, nms_reference


def boxes_strategy():
    coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
    return st.tuples(coord, coord, coord, coord).map(
        lambda t: (min(t[0], t[2]), min(t[1], t[3]),
                   max(t[0], t[2]) + 1.0, max(t[1], t[3]) + 1.0)
    )


class TestBoxBasics:
    def test_area(self):
        assert box_area((0, 0, 4, 3)) == 12.0
        assert box_area((5, 5, 5, 5)) == 0.0

    def test_iou_identical(self):
        assert box_iou((0, 0, 10, 10), (0, 0, 10, 10)) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert box_iou((0, 0, 1, 1), (5, 5, 6, 6)) == 0.0

    def test_iou_half_overlap(self):
        assert box_iou((0, 0, 2, 2), (1, 0, 3, 2)) == pytest.approx(1 / 3)

    def test_iou_touching_edges_zero(self):
        assert box_iou((0, 0, 1, 1), (1, 0, 2, 1)) == 0.0

    def test_clip(self):
        assert clip_box((-5, -5, 200, 50), 100, 100) == (0, 0, 100, 50)


class TestNMS:
    def test_keeps_non_overlapping(self):
        boxes = [(0, 0, 10, 10), (20, 20, 30, 30), (50, 50, 60, 60)]
        kept = nms(boxes, [0.9, 0.8, 0.7])
        assert sorted(kept) == [0, 1, 2]

    def test_suppresses_duplicates(self):
        boxes = [(0, 0, 10, 10), (1, 1, 11, 11)]
        kept = nms(boxes, [0.9, 0.5], iou_threshold=0.5)
        assert kept == [0]

    def test_keeps_highest_score(self):
        boxes = [(0, 0, 10, 10), (1, 1, 11, 11)]
        kept = nms(boxes, [0.5, 0.9], iou_threshold=0.5)
        assert kept == [1]

    def test_empty_input(self):
        assert nms([], []) == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            nms([(0, 0, 1, 1)], [])

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            nms([(0, 0, 1, 1)], [0.5], iou_threshold=2.0)

    def test_descending_order(self):
        boxes = [(0, 0, 10, 10), (20, 20, 30, 30)]
        kept = nms(boxes, [0.1, 0.9])
        assert kept == [1, 0]

    def test_tied_scores_deterministic(self):
        """Stable sort: ties resolve to ascending input index, so the keep
        set no longer depends on numpy's unstable quicksort."""
        boxes = [(0, 0, 10, 10), (1, 1, 11, 11), (0, 0, 10, 10)]
        scores = [0.7, 0.7, 0.7]
        for fn in (nms, nms_reference):
            assert fn(boxes, scores, iou_threshold=0.5) == [0]
        disjoint = [(0, 0, 10, 10), (20, 20, 30, 30), (40, 40, 50, 50)]
        for fn in (nms, nms_reference):
            assert fn(disjoint, [0.5, 0.5, 0.5]) == [0, 1, 2]

    def test_vectorized_empty_and_validation_match_reference(self):
        assert nms([], []) == nms_reference([], []) == []
        for fn in (nms, nms_reference):
            with pytest.raises(ValueError):
                fn([(0, 0, 1, 1)], [0.5, 0.6])
            with pytest.raises(ValueError):
                fn([(0, 0, 1, 1)], [0.5], iou_threshold=-0.1)


@settings(max_examples=40, deadline=None)
@given(st.lists(boxes_strategy(), min_size=1, max_size=12),
       st.floats(min_value=0.1, max_value=0.9))
def test_nms_invariants(boxes, threshold):
    rng = np.random.default_rng(len(boxes))
    scores = rng.random(len(boxes)).tolist()
    kept = nms(boxes, scores, iou_threshold=threshold)
    # 1. kept indices are unique and valid
    assert len(set(kept)) == len(kept)
    assert all(0 <= i < len(boxes) for i in kept)
    # 2. kept boxes mutually below threshold
    for i, a in enumerate(kept):
        for b in kept[i + 1:]:
            assert box_iou(boxes[a], boxes[b]) < threshold
    # 3. every suppressed box overlaps a kept box with >= score
    for idx in range(len(boxes)):
        if idx in kept:
            continue
        assert any(
            box_iou(boxes[idx], boxes[k]) >= threshold
            and scores[k] >= scores[idx]
            for k in kept
        )


@settings(max_examples=60, deadline=None)
@given(st.lists(boxes_strategy(), min_size=1, max_size=24),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_nms_vectorized_matches_reference(boxes, threshold, seed):
    """The vectorized nms is byte-identical to the loop oracle —
    including tied scores (drawn from a coarse grid to force ties)."""
    rng = np.random.default_rng(seed)
    scores = (rng.integers(0, 4, size=len(boxes)) / 4.0).tolist()
    assert nms(boxes, scores, iou_threshold=threshold) == \
        nms_reference(boxes, scores, iou_threshold=threshold)


@settings(max_examples=40, deadline=None)
@given(boxes_strategy(), boxes_strategy())
def test_iou_symmetric_and_bounded(a, b):
    iou_ab = box_iou(a, b)
    assert iou_ab == pytest.approx(box_iou(b, a))
    assert 0.0 <= iou_ab <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(boxes_strategy())
def test_iou_self_is_one(a):
    assert box_iou(a, a) == pytest.approx(1.0)
