"""Design-space exploration of the iTask accelerator.

Sweeps array geometry and clock frequency for the deployed quantized
model, prints the full grid with area/latency/energy, extracts the
Pareto frontier, and shows the op-level execution timeline (Gantt) of the
chosen configuration — the analysis behind a DAC paper's
"why this configuration" section.

Run:  python examples/design_space_exploration.py
"""

from repro.core import ArtifactBuilder
from repro.hw import (
    AcceleratorConfig,
    Compiler,
    build_schedule,
    pareto_front,
    sweep,
)


def main() -> None:
    print("=== iTask accelerator design-space exploration ===")
    builder = ArtifactBuilder(seed=0)
    model = builder.quantized().model

    points = sweep(
        model,
        array_sizes=((8, 8), (16, 16), (24, 24), (32, 32)),
        clocks_mhz=(250.0, 500.0, 800.0),
    )

    header = (f"{'array':>7} {'clock':>7} {'latency_ms':>11} "
              f"{'energy_uJ':>10} {'area_mm2':>9} {'util%':>6}")
    print("\nfull grid:")
    print(header)
    for point in points:
        row = point.as_row()
        print(f"{row['array']:>7} {row['clock_mhz']:>7.0f} "
              f"{row['latency_ms']:>11.4f} {row['energy_uj']:>10.2f} "
              f"{row['area_mm2']:>9.3f} {row['util_pct']:>6.1f}")

    front = pareto_front(points)
    print(f"\nPareto frontier ({len(front)} of {len(points)} points):")
    print(header)
    for point in front:
        row = point.as_row()
        print(f"{row['array']:>7} {row['clock_mhz']:>7.0f} "
              f"{row['latency_ms']:>11.4f} {row['energy_uj']:>10.2f} "
              f"{row['area_mm2']:>9.3f} {row['util_pct']:>6.1f}")

    # Timeline of the paper's default configuration.
    default = AcceleratorConfig.edge_default()
    program = Compiler(default).compile(model)
    schedule = build_schedule(program, default)
    print(f"\nexecution timeline on {default.name} "
          f"({default.array_rows}x{default.array_cols} @ "
          f"{default.clock_mhz:.0f} MHz):")
    print(schedule.gantt())


if __name__ == "__main__":
    main()
