"""Streaming sensing: iTask on a continuous frame stream.

The paper's deployment scenario: an edge sensor produces frames
continuously; objects appear, persist, and vanish.  This example runs the
quantized configuration with temporal smoothing + hysteresis over an
evolving scene, reports streaming metrics, and uses the hardware
simulator to confirm the accelerator sustains the frame rate with power
to spare.

Run:  python examples/streaming_sensing.py
"""

from repro.core import ArtifactBuilder
from repro.data import get_task
from repro.hw import AcceleratorConfig, Compiler, Simulator
from repro.kg import GraphMatcher, SimulatedLLM
from repro.stream import (
    SceneSequence,
    SequenceConfig,
    StreamingDetector,
    TrackerConfig,
    evaluate_stream,
)

FRAMES = 40
FPS = 30.0


def main() -> None:
    print("=== iTask streaming sensing ===")
    builder = ArtifactBuilder(seed=0)
    model = builder.quantized().model
    task = get_task("roadside_hazards")
    matcher = GraphMatcher(SimulatedLLM().generate_for_task(task))
    print(f"\nmission: {task.name}  ({FRAMES} frames @ {FPS:.0f} fps)")

    print(f"\n{'config':<26} {'accuracy':>9} {'latency(frames)':>16} "
          f"{'detected':>9} {'flicker':>8}")
    for label, config in [
        ("single-frame (no memory)", TrackerConfig(smoothing=0.0,
                                                   on_threshold=0.35,
                                                   off_threshold=0.35,
                                                   max_missed_frames=0)),
        ("EMA + hysteresis", TrackerConfig()),
    ]:
        detector = StreamingDetector(model, matcher, config)
        sequence = SceneSequence(SequenceConfig(), seed=11)
        metrics = evaluate_stream(detector, sequence, task, num_frames=FRAMES)
        print(f"{label:<26} {metrics.frame_accuracy:>9.3f} "
              f"{metrics.mean_detection_latency:>16.2f} "
              f"{metrics.detected_fraction:>9.2f} "
              f"{metrics.flicker_rate:>8.3f}")

    # Can the accelerator keep up? One frame = grid² window inferences.
    accel_config = AcceleratorConfig.edge_default()
    grid = SequenceConfig().scene.grid
    program = Compiler(accel_config).compile(model, batch=grid * grid)
    report = Simulator(accel_config).simulate(program)
    budget_ms = 1000.0 / FPS
    print(f"\nframe compute on accelerator: {report.latency_ms:.3f} ms "
          f"(budget {budget_ms:.1f} ms @ {FPS:.0f} fps "
          f"→ {budget_ms / report.latency_ms:.0f}x headroom)")
    print(f"energy per frame: {report.energy_j * 1e6:.1f} uJ (compute only)")


if __name__ == "__main__":
    main()
