"""Streaming sensing: iTask on a continuous frame stream.

The paper's deployment scenario: an edge sensor produces frames
continuously; objects appear, persist, and vanish.  This example
prepares the mission once through the session cache
(``pipeline.session``), runs the quantized configuration with temporal
smoothing + hysteresis over an evolving scene, replays the same stream
through the fused ``update_many`` path, and uses the hardware simulator
to confirm the accelerator sustains the frame rate with power to spare.

Run:  python examples/streaming_sensing.py
"""

import time

from repro.core import ArtifactBuilder, ITaskPipeline, TaskSpec
from repro.data import get_task
from repro.hw import AcceleratorConfig, Compiler, Simulator
from repro.stream import (
    SceneSequence,
    SequenceConfig,
    StreamingDetector,
    TrackerConfig,
    evaluate_stream,
)

FRAMES = 40
FPS = 30.0


def main() -> None:
    print("=== iTask streaming sensing ===")
    builder = ArtifactBuilder(seed=0)
    pipeline = ITaskPipeline(builder.quantized())
    task = get_task("roadside_hazards")
    # One prepared mission serves every tracker below: the session caches
    # LLM extraction, configuration selection, and the matcher plans.
    session = pipeline.session(TaskSpec.from_definition(task))
    print(f"\nmission: {task.name}  ({FRAMES} frames @ {FPS:.0f} fps)  "
          f"configuration: {session.decision.kind}")

    print(f"\n{'config':<26} {'accuracy':>9} {'latency(frames)':>16} "
          f"{'detected':>9} {'flicker':>8}")
    for label, config in [
        ("single-frame (no memory)", TrackerConfig(smoothing=0.0,
                                                   on_threshold=0.35,
                                                   off_threshold=0.35,
                                                   max_missed_frames=0)),
        ("EMA + hysteresis", TrackerConfig()),
    ]:
        detector = StreamingDetector.from_session(session, config)
        sequence = SceneSequence(SequenceConfig(), seed=11)
        metrics = evaluate_stream(detector, sequence, task, num_frames=FRAMES)
        print(f"{label:<26} {metrics.frame_accuracy:>9.3f} "
              f"{metrics.mean_detection_latency:>16.2f} "
              f"{metrics.detected_fraction:>9.2f} "
              f"{metrics.flicker_rate:>8.3f}")

    # Offline replay: the recorded stream re-scored with one fused model
    # forward per chunk (update_many) — same tracks, fewer, bigger GEMMs.
    sequence = SceneSequence(SequenceConfig(), seed=11)
    frames = [sequence.step().scene for _ in range(FRAMES)]
    for label, runner in [
        ("frame-by-frame", lambda d: [d.update(f) for f in frames]),
        ("fused replay (update_many)", lambda d: d.update_many(frames)),
    ]:
        detector = StreamingDetector.from_session(session)
        start = time.perf_counter()
        snapshots = runner(detector)
        elapsed = time.perf_counter() - start
        print(f"{label:<28} {len(frames) / elapsed:>7.1f} frames/s "
              f"({sum(len(s) for s in snapshots)} track-frames)")

    # Can the accelerator keep up? One frame = grid² window inferences.
    accel_config = AcceleratorConfig.edge_default()
    grid = SequenceConfig().scene.grid
    model = session.configuration.model
    program = Compiler(accel_config).compile(model, batch=grid * grid)
    report = Simulator(accel_config).simulate(program)
    budget_ms = 1000.0 / FPS
    print(f"\nframe compute on accelerator: {report.latency_ms:.3f} ms "
          f"(budget {budget_ms:.1f} ms @ {FPS:.0f} fps "
          f"→ {budget_ms / report.latency_ms:.0f}x headroom)")
    print(f"energy per frame: {report.energy_j * 1e6:.1f} uJ (compute only)")


if __name__ == "__main__":
    main()
