"""Mission patrol: the dual-configuration system on a driving scenario.

Demonstrates the paper's situational adaptivity: the pipeline holds a
distilled specialist for the `roadside_hazards` mission plus the quantized
generalist.  Missions matching the specialist's knowledge graph route to
it; anything else — or an explicit multi-task request — falls back to the
quantized configuration.

Uses the shared artifact cache (first run trains the models, ~4 minutes;
later runs load checkpoints).

Run:  python examples/mission_patrol.py
"""

from repro.core import ArtifactBuilder, ITaskPipeline, TaskSpec
from repro.data import SceneConfig, SceneGenerator, get_task, task_names
from repro.kg import SimulatedLLM


def main() -> None:
    print("=== iTask mission patrol (dual configuration) ===")
    builder = ArtifactBuilder(seed=0)
    llm = SimulatedLLM()

    print("\nloading / building models (cached under .artifacts/)...")
    quantized = builder.quantized()
    patrol_task = get_task("roadside_hazards")
    specialist = builder.task_student(patrol_task)

    pipeline = ITaskPipeline(quantized, llm=llm)
    pipeline.register_specialist(
        patrol_task.name, specialist, llm.generate_for_task(patrol_task))

    scenes = SceneGenerator(SceneConfig(), seed=7).generate_batch(16)

    # Mission 1: the patrol mission the specialist was distilled for.
    spec = TaskSpec.from_definition(patrol_task)
    result = pipeline.prepare(spec)
    print(f"\nmission 1: {patrol_task.name}")
    print(f"  decision : {result.decision.kind} — {result.decision.rationale}")
    print(f"  accuracy : {pipeline.evaluate(spec, scenes):.3f}")

    # Mission 2: an unrelated industrial mission — no specialist for it.
    other_task = get_task("cargo_audit")
    other_spec = TaskSpec.from_definition(other_task)
    result = pipeline.prepare(other_spec)
    print(f"\nmission 2: {other_task.name}")
    print(f"  decision : {result.decision.kind} — {result.decision.rationale}")
    print(f"  accuracy : {pipeline.evaluate(other_spec, scenes):.3f}")

    # Mission 3: the patrol mission again, but the operator asks for
    # multi-task operation (several missions sharing the device).
    result = pipeline.prepare(spec, multi_task=True)
    print(f"\nmission 3: {patrol_task.name} (multi-task mode)")
    print(f"  decision : {result.decision.kind} — {result.decision.rationale}")
    print(f"  accuracy : {pipeline.evaluate(spec, scenes, multi_task=True):.3f}")

    # A peek at the specialist's advantage on its own mission across the
    # whole library.
    print("\nper-mission accuracy of the quantized generalist:")
    for name in task_names():
        task_spec = TaskSpec.from_definition(get_task(name))
        accuracy = pipeline.evaluate(task_spec, scenes, multi_task=True)
        print(f"  {name:<22} {accuracy:.3f}")


if __name__ == "__main__":
    main()
