"""Edge deployment: serve a mission end to end on the edge stack.

Walks the full deployment path the paper describes: mission prepared
once through the session cache → scenes served by the micro-batching
:class:`repro.serve.DetectionEngine` → post-training-quantized ViT
compiled to the accelerator → cycle-level simulation → comparison
against the edge-GPU baseline — latency, utilization, per-component
energy, and the streaming platform energy that underlies the paper's
"3.5× speedup / 40% energy reduction" headline.

Run:  python examples/edge_deployment.py
"""

import time

from repro.core import ArtifactBuilder, ITaskPipeline, TaskSpec
from repro.data import SceneConfig, SceneGenerator, get_task
from repro.hw import (
    AcceleratorConfig,
    Compiler,
    GPUConfig,
    GPUModel,
    Simulator,
    streaming_comparison,
)
from repro.serve import EngineConfig


def main() -> None:
    print("=== iTask edge deployment ===")
    builder = ArtifactBuilder(seed=0)
    pipeline = ITaskPipeline(builder.quantized())
    quantized = builder.quantized().model
    print(f"\nquantized model: w{quantized.weight_bits()}a8, "
          f"{quantized.model_size_bytes() / 1024:.0f} KiB on device")

    # Serving layer: prepare the mission once, then micro-batch a stream
    # of scenes through the engine (flush at max_batch or flush_ms).
    task = get_task("roadside_hazards")
    session = pipeline.session(TaskSpec.from_definition(task))
    scenes = SceneGenerator(SceneConfig(grid=3), seed=3).generate_batch(32)
    with session.engine(EngineConfig(max_batch=8, workers=1)) as engine:
        engine.detect_many(scenes[:4])  # warm the kernels
        start = time.perf_counter()
        results = engine.detect_many(scenes)
        elapsed = time.perf_counter() - start
    detections = sum(len(r) for r in results)
    print(f"\nserved {len(scenes)} scenes through the engine in "
          f"{elapsed * 1e3:.1f} ms ({len(scenes) / elapsed:.0f} scenes/s, "
          f"{detections} detections, configuration: {session.decision.kind})")

    accel_config = AcceleratorConfig.edge_default()
    program = Compiler(accel_config).compile(quantized, batch=1)
    print(f"\ncompiled program: {program.summary()}")

    accel = Simulator(accel_config).simulate(program)
    print(f"\n--- accelerator ({accel_config.name}, "
          f"{accel_config.array_rows}x{accel_config.array_cols} @ "
          f"{accel_config.clock_mhz:.0f} MHz) ---")
    print(accel.summary())

    gpu = GPUModel(GPUConfig.jetson_class()).simulate(program)
    print("\n--- edge GPU baseline ---")
    print(gpu.summary())

    print("\n--- headline comparison (30 fps stream) ---")
    comparison = streaming_comparison(accel.latency_s, gpu.latency_s, fps=30.0)
    print(f"  speedup                 : {comparison['speedup']:.2f}x")
    print(f"  accel energy/frame      : "
          f"{comparison['accel_energy_per_frame_mj']:.1f} mJ")
    print(f"  gpu energy/frame        : "
          f"{comparison['gpu_energy_per_frame_mj']:.1f} mJ")
    print(f"  platform energy saving  : "
          f"{comparison['energy_reduction_pct']:.1f} %")
    print(f"  per-inference core energy: accel "
          f"{accel.energy_per_inference_j * 1e6:.1f} uJ vs GPU "
          f"{gpu.energy_per_inference_j * 1e6:.1f} uJ")


if __name__ == "__main__":
    main()
