"""Edge deployment: compile the quantized ViT to the accelerator.

Walks the full hardware path the paper describes: post-training
quantization → compiler lowering → cycle-level simulation → comparison
against the edge-GPU baseline — latency, utilization, per-component
energy, and the streaming platform energy that underlies the paper's
"3.5× speedup / 40% energy reduction" headline.

Run:  python examples/edge_deployment.py
"""

from repro.core import ArtifactBuilder
from repro.hw import (
    AcceleratorConfig,
    Compiler,
    GPUConfig,
    GPUModel,
    Simulator,
    streaming_comparison,
)


def main() -> None:
    print("=== iTask edge deployment ===")
    builder = ArtifactBuilder(seed=0)
    quantized = builder.quantized().model
    print(f"\nquantized model: w{quantized.weight_bits()}a8, "
          f"{quantized.model_size_bytes() / 1024:.0f} KiB on device")

    accel_config = AcceleratorConfig.edge_default()
    program = Compiler(accel_config).compile(quantized, batch=1)
    print(f"\ncompiled program: {program.summary()}")

    accel = Simulator(accel_config).simulate(program)
    print(f"\n--- accelerator ({accel_config.name}, "
          f"{accel_config.array_rows}x{accel_config.array_cols} @ "
          f"{accel_config.clock_mhz:.0f} MHz) ---")
    print(accel.summary())

    gpu = GPUModel(GPUConfig.jetson_class()).simulate(program)
    print("\n--- edge GPU baseline ---")
    print(gpu.summary())

    print("\n--- headline comparison (30 fps stream) ---")
    comparison = streaming_comparison(accel.latency_s, gpu.latency_s, fps=30.0)
    print(f"  speedup                 : {comparison['speedup']:.2f}x")
    print(f"  accel energy/frame      : "
          f"{comparison['accel_energy_per_frame_mj']:.1f} mJ")
    print(f"  gpu energy/frame        : "
          f"{comparison['gpu_energy_per_frame_mj']:.1f} mJ")
    print(f"  platform energy saving  : "
          f"{comparison['energy_reduction_pct']:.1f} %")
    print(f"  per-inference core energy: accel "
          f"{accel.energy_per_inference_j * 1e6:.1f} uJ vs GPU "
          f"{gpu.energy_per_inference_j * 1e6:.1f} uJ")


if __name__ == "__main__":
    main()
