"""Quickstart: train, distill, quantize, and run a task-oriented detection.

Runs end-to-end in about a minute on a laptop CPU (reduced epoch budget;
the full-quality models live in the shared artifact cache used by the
benchmarks).  Shows the complete iTask flow:

    mission text ──(simulated LLM)──▶ knowledge graph
    teacher ──(distillation)──▶ student ──(PTQ)──▶ quantized configuration
    scene ──▶ TaskDetector(model, graph) ──▶ detections

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ITaskPipeline, TaskSpec, build_quantized_configuration
from repro.core.configurations import build_multitask_student, build_teacher
from repro.data import SceneConfig, SceneGenerator, get_task
from repro.kg import SimulatedLLM


def main() -> None:
    print("=== iTask quickstart ===")

    # 1. Train a small teacher on the broad scene distribution, distill
    #    the edge student from it, and quantize the student to int8.
    print("\n[1/4] training teacher (this takes ~30s on one core)...")
    teacher = build_teacher(epochs=10, seed=0)
    print("[2/4] distilling the multi-task student...")
    student = build_multitask_student(teacher, epochs=8, seed=1)
    print("[3/4] post-training quantization to int8...")
    quantized = build_quantized_configuration(student)
    print(f"      deployed model: {quantized.name}, "
          f"{quantized.model.model_size_bytes() / 1024:.0f} KiB")

    # 2. A mission arrives as natural language.  The (simulated) LLM turns
    #    it into an abstract knowledge graph of task attributes.
    task = get_task("roadside_hazards")
    print(f"\n[4/4] mission: {task.mission_text!r}")
    kg = SimulatedLLM().generate_for_task(task)
    print(f"      knowledge graph: {kg}")

    # 3. Run the pipeline over a scene.
    pipeline = ITaskPipeline(quantized)
    spec = TaskSpec.from_definition(task)
    scene = SceneGenerator(SceneConfig(), seed=42).generate()
    detections = pipeline.detect(spec, scene)

    print(f"\nscene has {len(scene.objects)} objects; "
          f"{sum(task.matches(o.profile) for o in scene.objects)} are task-relevant")
    print(f"detector fired on {len(detections)} windows:")
    for det in detections:
        print(f"  bbox={det.bbox}  score={det.score:.2f} "
              f"(objectness={det.objectness:.2f}, task={det.task_score:.2f})")

    # 4. Accuracy against ground truth over a small scene batch.
    scenes = SceneGenerator(SceneConfig(), seed=43).generate_batch(10)
    accuracy = pipeline.evaluate(spec, scenes)
    print(f"\nwindow-level task accuracy over 10 scenes: {accuracy:.3f}")


if __name__ == "__main__":
    main()
