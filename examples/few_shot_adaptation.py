"""Few-shot adaptation: repairing a noisy knowledge graph with examples.

The paper's core usability claim: iTask adapts to a new mission from
*limited samples* because the knowledge graph reasons over abstract
attributes.  Here the mission text goes through a deliberately unreliable
LLM (50% constraint omission, 25% hallucination); we then hand the system
a handful of annotated example objects and watch graph refinement recover
the mission.

Run:  python examples/few_shot_adaptation.py
"""

import numpy as np

from repro.core import ArtifactBuilder
from repro.data import build_task_windows, few_shot_split, get_task
from repro.detect import window_task_accuracy
from repro.kg import GraphMatcher, LLMNoiseConfig, SimulatedLLM, refine_with_examples


def main() -> None:
    print("=== iTask few-shot adaptation ===")
    builder = ArtifactBuilder(seed=0)
    quantized = builder.quantized().model

    task = get_task("valve_inspection")
    print(f"\nmission: {task.mission_text!r}")

    clean_kg = SimulatedLLM().generate_for_task(task)
    noisy_llm = SimulatedLLM(LLMNoiseConfig(
        omission_rate=0.5, hallucination_rate=0.25, seed=3))
    noisy_kg = noisy_llm.generate_for_task(task)
    print(f"\nclean graph : {clean_kg}")
    print(f"noisy graph : {noisy_kg}")

    windows = build_task_windows(task, seed=500, num_positive=120,
                                 num_negative=180,
                                 hard_negative_fraction=0.7,
                                 near_miss_fraction=0.7)

    print(f"\n{'shots':>5} | {'noisy graph':>11} | {'refined':>8} | {'clean':>6}")
    print("-" * 42)
    for shots in (0, 1, 2, 4, 8, 16):
        if shots == 0:
            query, refined_kg = windows, noisy_kg
        else:
            support, query = few_shot_split(windows, shots=shots, seed=1)
            positives = [p for p, lbl in zip(support.profiles,
                                             support.task_labels)
                         if lbl > 0.5 and p is not None]
            negatives = [p for p, lbl in zip(support.profiles,
                                             support.task_labels)
                         if lbl <= 0.5]
            refined_kg = refine_with_examples(noisy_kg, positives, negatives)
        noisy_acc = window_task_accuracy(quantized, query,
                                         GraphMatcher(noisy_kg))
        refined_acc = window_task_accuracy(quantized, query,
                                           GraphMatcher(refined_kg))
        clean_acc = window_task_accuracy(quantized, query,
                                         GraphMatcher(clean_kg))
        print(f"{shots:>5} | {noisy_acc:>11.3f} | {refined_acc:>8.3f} "
              f"| {clean_acc:>6.3f}")

    print("\nAfter ~8 example objects the refined graph matches the clean-"
          "text graph —\nno retraining, no gradient steps, just graph surgery.")


if __name__ == "__main__":
    main()
